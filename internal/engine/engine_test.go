package engine

import (
	"testing"

	"acceptableads/internal/filter"
)

func mustEngine(t *testing.T, lists ...NamedList) *Engine {
	t.Helper()
	e, err := New(lists...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func listOf(name, text string) NamedList {
	return NamedList{Name: name, List: filter.ParseListString(name, text)}
}

func TestBlockThirdPartyAdzerk(t *testing.T) {
	// §2.1.1: "||adzerk.net^$third-party" blocks all third-party
	// requests to adzerk.net or any of its subdomains.
	e := mustEngine(t, listOf("easylist", "||adzerk.net^$third-party"))
	d := e.MatchRequest(&Request{
		URL:          "http://static.adzerk.net/reddit/ads.html?sr=-reddit.com",
		Type:         filter.TypeSubdocument,
		DocumentHost: "www.reddit.com",
	})
	if d.Verdict != Blocked {
		t.Fatalf("verdict = %v, want blocked", d.Verdict)
	}
	// First-party request from adzerk.net itself is not blocked.
	d = e.MatchRequest(&Request{
		URL:          "http://static.adzerk.net/logo.png",
		Type:         filter.TypeImage,
		DocumentHost: "adzerk.net",
	})
	if d.Verdict != NoMatch {
		t.Fatalf("first-party verdict = %v, want no-match", d.Verdict)
	}
}

func TestExceptionOverridesBlock(t *testing.T) {
	// The paper's Reddit whitelisting: the exception overrides the
	// blocking filter regardless of match order.
	e := mustEngine(t,
		listOf("easylist", "||adzerk.net^$third-party"),
		listOf("exceptionrules", "@@||adzerk.net/reddit/$subdocument,document,domain=reddit.com"),
	)
	d := e.MatchRequest(&Request{
		URL:          "http://static.adzerk.net/reddit/ads.html",
		Type:         filter.TypeSubdocument,
		DocumentHost: "www.reddit.com",
	})
	if d.Verdict != Allowed {
		t.Fatalf("verdict = %v, want allowed", d.Verdict)
	}
	if m := d.BlockedBy(); m == nil || m.List != "easylist" {
		t.Errorf("BlockedBy = %+v", m)
	}
	if m := d.AllowedBy(); m == nil || m.List != "exceptionrules" {
		t.Errorf("AllowedBy = %+v", m)
	}
	// On another site the exception does not apply.
	d = e.MatchRequest(&Request{
		URL:          "http://static.adzerk.net/reddit/ads.html",
		Type:         filter.TypeSubdocument,
		DocumentHost: "example.com",
	})
	if d.Verdict != Blocked {
		t.Fatalf("other-site verdict = %v, want blocked", d.Verdict)
	}
}

func TestDomainAnchorSemantics(t *testing.T) {
	// Appendix A: "||example.com/ad.jpg|" matches
	// http://good.example.com/ad.jpg and https://example.com/ad.jpg but
	// not https://example.com/ad.jpg.exe.
	e := mustEngine(t, listOf("l", "||example.com/ad.jpg|"))
	cases := []struct {
		url  string
		want Verdict
	}{
		{"http://good.example.com/ad.jpg", Blocked},
		{"https://example.com/ad.jpg", Blocked},
		{"https://example.com/ad.jpg.exe", NoMatch},
		{"http://badexample.com/ad.jpg", NoMatch},
		{"http://example.com.evil.org/ad.jpg", NoMatch},
	}
	for _, c := range cases {
		d := e.MatchRequest(&Request{URL: c.url, Type: filter.TypeImage, DocumentHost: "x.com"})
		if d.Verdict != c.want {
			t.Errorf("%s: verdict = %v, want %v", c.url, d.Verdict, c.want)
		}
	}
}

func TestSeparatorSemantics(t *testing.T) {
	// Appendix A: "||^www.google.com^" — we test the documented separator
	// behaviour with "||www.google.com^": it matches
	// http://www.google.com/#q=foo but not http://scholar.google.com.
	e := mustEngine(t, listOf("l", "||www.google.com^"))
	d := e.MatchRequest(&Request{URL: "http://www.google.com/#q=foo", Type: filter.TypeOther, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("www.google.com/#q=foo: %v, want blocked", d.Verdict)
	}
	d = e.MatchRequest(&Request{URL: "http://scholar.google.com/x", Type: filter.TypeOther, DocumentHost: "x.com"})
	if d.Verdict != NoMatch {
		t.Errorf("scholar.google.com: %v, want no-match", d.Verdict)
	}
	// '^' also matches the end of the URL.
	d = e.MatchRequest(&Request{URL: "http://www.google.com", Type: filter.TypeOther, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("bare www.google.com: %v, want blocked", d.Verdict)
	}
}

func TestWildcards(t *testing.T) {
	e := mustEngine(t, listOf("l", "/ad-frame/"))
	d := e.MatchRequest(&Request{URL: "http://any.example/x/ad-frame/y.gif", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("implicit wildcard match failed: %v", d.Verdict)
	}
	e2 := mustEngine(t, listOf("l", "||google.com/ads/search/module/ads/*/search.js"))
	d = e2.MatchRequest(&Request{
		URL:  "http://google.com/ads/search/module/ads/v7/search.js",
		Type: filter.TypeScript, DocumentHost: "suche.golem.de",
	})
	if d.Verdict != Blocked {
		t.Errorf("star wildcard match failed: %v", d.Verdict)
	}
	// "ads/*/search.js" requires both slashes around the wildcard (its
	// regex translation is "ads/.*/search\.js"), so a URL with only one
	// path segment between them must not match.
	d = e2.MatchRequest(&Request{
		URL:  "http://google.com/ads/search/module/ads/search.js",
		Type: filter.TypeScript, DocumentHost: "suche.golem.de",
	})
	if d.Verdict != NoMatch {
		t.Errorf("collapsed star matched: %v", d.Verdict)
	}
}

func TestContentTypeGating(t *testing.T) {
	e := mustEngine(t, listOf("l", "||ads.example^$script"))
	d := e.MatchRequest(&Request{URL: "http://ads.example/a.js", Type: filter.TypeScript, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("script: %v, want blocked", d.Verdict)
	}
	d = e.MatchRequest(&Request{URL: "http://ads.example/a.png", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != NoMatch {
		t.Errorf("image: %v, want no-match", d.Verdict)
	}
}

func TestDocumentTypeNotImplicit(t *testing.T) {
	// $document never applies implicitly: a plain blocking filter must
	// not block a top-level document request.
	e := mustEngine(t, listOf("l", "||evil.example^"))
	d := e.MatchRequest(&Request{URL: "http://evil.example/", Type: filter.TypeDocument, DocumentHost: "evil.example"})
	if d.Verdict != NoMatch {
		t.Errorf("document request: %v, want no-match", d.Verdict)
	}
}

func TestMatchCase(t *testing.T) {
	e := mustEngine(t, listOf("l", "/BannerAd/$match-case"))
	d := e.MatchRequest(&Request{URL: "http://x.example/BannerAd/1.png", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("exact case: %v, want blocked", d.Verdict)
	}
	d = e.MatchRequest(&Request{URL: "http://x.example/bannerad/1.png", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != NoMatch {
		t.Errorf("wrong case: %v, want no-match", d.Verdict)
	}
	// Without match-case, matching is case-insensitive both ways.
	e2 := mustEngine(t, listOf("l", "/BannerAd/"))
	d = e2.MatchRequest(&Request{URL: "http://x.example/bannerad/1.png", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("case-insensitive: %v, want blocked", d.Verdict)
	}
}

func TestRegexFilter(t *testing.T) {
	e := mustEngine(t, listOf("l", `/banner[0-9]+\.gif/`))
	d := e.MatchRequest(&Request{URL: "http://x.example/banner123.gif", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("regex: %v, want blocked", d.Verdict)
	}
	d = e.MatchRequest(&Request{URL: "http://x.example/banner.gif", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != NoMatch {
		t.Errorf("regex non-match: %v, want no-match", d.Verdict)
	}
}

func TestInvalidRegexError(t *testing.T) {
	_, err := New(listOf("l", `/banner[/`))
	if err == nil {
		t.Fatal("expected error for invalid regex filter")
	}
}

func TestSitekeyGating(t *testing.T) {
	e := mustEngine(t,
		listOf("easylist", "||ads.example^"),
		listOf("exceptionrules", "@@$sitekey=SEDOKEY,document"),
	)
	// Page presenting the verified key gets a document allowance.
	flags := e.PagePermissions("http://reddit.cm/", "SEDOKEY")
	if !flags.DocumentAllowed {
		t.Fatal("expected document allowance with valid sitekey")
	}
	if flags.DocumentBy == nil || flags.DocumentBy.List != "exceptionrules" {
		t.Errorf("DocumentBy = %+v", flags.DocumentBy)
	}
	// Without the key: no allowance.
	flags = e.PagePermissions("http://reddit.cm/", "")
	if flags.DocumentAllowed {
		t.Fatal("document allowed without sitekey")
	}
	// Wrong key: no allowance.
	flags = e.PagePermissions("http://reddit.cm/", "OTHERKEY")
	if flags.DocumentAllowed {
		t.Fatal("document allowed with wrong sitekey")
	}
}

func TestElemHideException(t *testing.T) {
	// EasyList hides #ad_main everywhere; the whitelist un-hides it on
	// reddit.com.
	e := mustEngine(t,
		listOf("easylist", "###ad_main"),
		listOf("exceptionrules", "reddit.com#@##ad_main"),
	)
	doc := parseDoc(`<div id="ad_main">ad</div><div id="other">x</div>`)
	ms := e.HideElements(doc, "http://www.reddit.com/", "www.reddit.com")
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0].Hidden() {
		t.Error("ad_main should be un-hidden on reddit.com")
	}
	if ms[0].AllowedBy == nil || ms[0].AllowedBy.List != "exceptionrules" {
		t.Errorf("AllowedBy = %+v", ms[0].AllowedBy)
	}
	// Elsewhere it stays hidden.
	ms = e.HideElements(doc, "http://example.com/", "example.com")
	if len(ms) != 1 || !ms[0].Hidden() {
		t.Fatalf("element should be hidden on example.com: %+v", ms)
	}
}

func TestElemHideDomainRestriction(t *testing.T) {
	e := mustEngine(t, listOf("easylist", "cracked.com##.topbar-ad"))
	doc := parseDoc(`<div class="topbar-ad">ad</div>`)
	if ms := e.HideElements(doc, "http://www.cracked.com/", "www.cracked.com"); len(ms) != 1 {
		t.Fatalf("cracked.com matches = %d, want 1", len(ms))
	}
	if ms := e.HideElements(doc, "http://other.com/", "other.com"); len(ms) != 0 {
		t.Fatalf("other.com matches = %d, want 0", len(ms))
	}
}

func TestElemHidePerElementCounting(t *testing.T) {
	// One filter hiding three elements yields three matches — the
	// total-vs-distinct distinction of Figure 7.
	e := mustEngine(t, listOf("easylist", "##.ad"))
	doc := parseDoc(`<div class="ad">1</div><div class="ad">2</div><div class="ad">3</div>`)
	var acts []Activation
	e.SetRecorder(RecorderFunc(func(a Activation) { acts = append(acts, a) }))
	ms := e.HideElements(doc, "http://x.com/", "x.com")
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3", len(ms))
	}
	if len(acts) != 3 {
		t.Fatalf("activations = %d, want 3", len(acts))
	}
}

func TestRecorderSeesNeedlessActivation(t *testing.T) {
	// §5: "whitelist filters activate needlessly" — an exception firing
	// with no blocking filter still counts as an activation.
	e := mustEngine(t, listOf("exceptionrules", "@@||gstatic.com^$third-party"))
	var acts []Activation
	e.SetRecorder(RecorderFunc(func(a Activation) { acts = append(acts, a) }))
	d := e.MatchRequest(&Request{
		URL: "http://fonts.gstatic.com/s/roboto.woff", Type: filter.TypeOther,
		DocumentHost: "example.com",
	})
	if d.Verdict != Allowed {
		t.Fatalf("verdict = %v, want allowed", d.Verdict)
	}
	if d.BlockedBy() != nil {
		t.Error("no blocking filter should have matched")
	}
	if len(acts) != 1 || acts[0].List != "exceptionrules" {
		t.Fatalf("activations = %+v", acts)
	}
}

func TestFastPathSkipsNeedlessExceptions(t *testing.T) {
	e := mustEngine(t, listOf("exceptionrules", "@@||gstatic.com^$third-party"))
	d := e.MatchRequest(&Request{
		URL: "http://fonts.gstatic.com/s/roboto.woff", Type: filter.TypeOther,
		DocumentHost: "example.com",
	}, WithShortCircuit())
	if d.Verdict != NoMatch {
		t.Fatalf("fast verdict = %v, want no-match (no blocking filter)", d.Verdict)
	}
}

func TestLinearMatchesIndexed(t *testing.T) {
	// The keyword index must be semantics-preserving.
	lists := []NamedList{
		listOf("easylist", "||adzerk.net^$third-party\n||doubleclick.net^\n/ad-frame/\n||ads.example^$script\n|http://exact.example/ad.jpg|"),
		listOf("exceptionrules", "@@||adzerk.net/reddit/$subdocument,document,domain=reddit.com\n@@||gstatic.com^$third-party\n@@||googleadservices.com^$third-party"),
	}
	e := mustEngine(t, lists...)
	urls := []struct {
		url  string
		typ  filter.ContentType
		host string
	}{
		{"http://static.adzerk.net/reddit/ads.html", filter.TypeSubdocument, "reddit.com"},
		{"http://stats.g.doubleclick.net/r/collect", filter.TypeImage, "toyota.com"},
		{"http://x.example/ad-frame/1.gif", filter.TypeImage, "x.com"},
		{"http://ads.example/a.js", filter.TypeScript, "x.com"},
		{"http://exact.example/ad.jpg", filter.TypeImage, "x.com"},
		{"http://fonts.gstatic.com/f.woff", filter.TypeOther, "x.com"},
		{"http://www.googleadservices.com/pagead/conversion.js", filter.TypeScript, "shop.com"},
		{"http://plain.example/index.css", filter.TypeStylesheet, "x.com"},
	}
	for _, u := range urls {
		req := &Request{URL: u.url, Type: u.typ, DocumentHost: u.host}
		a := e.MatchRequest(req)
		b := e.MatchRequest(req, WithLinearScan())
		if a.Verdict != b.Verdict {
			t.Errorf("%s: indexed %v != linear %v", u.url, a.Verdict, b.Verdict)
		}
	}
}

func TestNumFiltersAndLists(t *testing.T) {
	e := mustEngine(t,
		listOf("easylist", "||a.example^\n##.ad\n! comment"),
		listOf("exceptionrules", "@@||b.example^"),
	)
	if e.NumFilters() != 3 {
		t.Errorf("NumFilters = %d, want 3", e.NumFilters())
	}
	if len(e.Lists()) != 2 || e.Lists()[0] != "easylist" {
		t.Errorf("Lists = %v", e.Lists())
	}
}

func TestDoNotTrackSignalling(t *testing.T) {
	// A DNT list (Appendix A.4): the filter signals the header and never
	// blocks; a $donottrack exception suppresses it per-site.
	e := mustEngine(t,
		listOf("dntlist", "||tracker.example^$donottrack\n@@||tracker.example/optout^$donottrack"),
		listOf("easylist", "||ads.example^"),
	)
	d := e.MatchRequest(&Request{
		URL: "http://tracker.example/collect.js", Type: filter.TypeScript,
		DocumentHost: "x.com",
	})
	if d.Verdict != NoMatch {
		t.Errorf("DNT filter blocked the request: %v", d.Verdict)
	}
	if !d.DoNotTrack {
		t.Error("DNT not signalled")
	}
	// The exception suppresses the signal.
	d = e.MatchRequest(&Request{
		URL: "http://tracker.example/optout/collect.js", Type: filter.TypeScript,
		DocumentHost: "x.com",
	})
	if d.DoNotTrack {
		t.Error("DNT signalled despite exception")
	}
	// Unrelated requests: no DNT, normal blocking still works.
	d = e.MatchRequest(&Request{
		URL: "http://ads.example/a.js", Type: filter.TypeScript, DocumentHost: "x.com",
	})
	if d.DoNotTrack || d.Verdict != Blocked {
		t.Errorf("unrelated request: dnt=%v verdict=%v", d.DoNotTrack, d.Verdict)
	}
}

func TestDoNotTrackZeroCostWithoutFilters(t *testing.T) {
	e := mustEngine(t, listOf("easylist", "||ads.example^"))
	d := e.MatchRequest(&Request{URL: "http://x.example/a.js", Type: filter.TypeScript, DocumentHost: "x.com"})
	if d.DoNotTrack {
		t.Error("DNT signalled with no DNT filters loaded")
	}
}

func TestSitekeyMultipleKeys(t *testing.T) {
	e := mustEngine(t, listOf("exceptionrules", "@@$sitekey=KEYA|KEYB,document"))
	for _, key := range []string{"KEYA", "KEYB"} {
		if flags := e.PagePermissions("http://parked.example/", key); !flags.DocumentAllowed {
			t.Errorf("key %s did not grant allowance", key)
		}
	}
	if flags := e.PagePermissions("http://parked.example/", "KEYC"); flags.DocumentAllowed {
		t.Error("unknown key granted allowance")
	}
}

func TestSchemeRelativeRequests(t *testing.T) {
	e := mustEngine(t, listOf("l", "||adzerk.net^$third-party"))
	d := e.MatchRequest(&Request{
		URL: "//static.adzerk.net/ads.html", Type: filter.TypeSubdocument,
		DocumentHost: "reddit.com",
	})
	if d.Verdict != Blocked {
		t.Errorf("scheme-relative URL verdict = %v, want blocked", d.Verdict)
	}
}

func TestNegatedTypeInteraction(t *testing.T) {
	// $~image,domain=x.com: all default types except image, only on x.com.
	e := mustEngine(t, listOf("l", "||ads.example^$~image,domain=x.com"))
	d := e.MatchRequest(&Request{URL: "http://ads.example/a.js", Type: filter.TypeScript, DocumentHost: "x.com"})
	if d.Verdict != Blocked {
		t.Errorf("script on x.com: %v, want blocked", d.Verdict)
	}
	d = e.MatchRequest(&Request{URL: "http://ads.example/a.png", Type: filter.TypeImage, DocumentHost: "x.com"})
	if d.Verdict != NoMatch {
		t.Errorf("image on x.com: %v, want no-match", d.Verdict)
	}
	d = e.MatchRequest(&Request{URL: "http://ads.example/a.js", Type: filter.TypeScript, DocumentHost: "y.com"})
	if d.Verdict != NoMatch {
		t.Errorf("script on y.com: %v, want no-match", d.Verdict)
	}
}
