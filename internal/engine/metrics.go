package engine

import (
	"acceptableads/internal/obs"
)

// engineMetrics holds the engine's pre-resolved telemetry instruments, so
// the hot path never touches a registry map. A nil *engineMetrics (the
// default) disables instrumentation entirely: the only cost left on the
// match path is one pointer test.
type engineMetrics struct {
	// attempts counts MatchRequest calls; the verdict counters partition
	// them (Snyder et al.'s "Who Filters the Filters" reports exactly
	// these per-engine totals).
	attempts *obs.Counter
	noMatch  *obs.Counter
	blocked  *obs.Counter
	allowed  *obs.Counter
	// latency is the per-match wall-time distribution — the paper-adjacent
	// overhead headline (Garimella et al. make matching overhead a
	// first-class result).
	latency *obs.Histogram
	// activations counts recorded filter firings per source list
	// ("engine.activations.easylist", ...).
	activations map[string]*obs.Counter
}

// SetMetrics wires the engine's hot-path telemetry into reg; nil reg
// disables it. Call it before matching starts (it is not synchronized
// against concurrent sessions) and after every list has been added, so the
// per-list activation counters cover all loaded lists.
func (e *Engine) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		e.metrics = nil
		return
	}
	m := &engineMetrics{
		attempts:    reg.Counter("engine.match.attempts"),
		noMatch:     reg.Counter("engine.match.nomatch"),
		blocked:     reg.Counter("engine.match.blocked"),
		allowed:     reg.Counter("engine.match.allowed"),
		latency:     reg.Histogram("engine.match.latency"),
		activations: make(map[string]*obs.Counter, len(e.lists)),
	}
	for _, name := range e.lists {
		m.activations[name] = reg.Counter("engine.activations." + name)
	}
	e.metrics = m
}

// verdict bumps the verdict partition counter.
func (m *engineMetrics) verdict(v Verdict) {
	switch v {
	case Blocked:
		m.blocked.Inc()
	case Allowed:
		m.allowed.Inc()
	default:
		m.noMatch.Inc()
	}
}
