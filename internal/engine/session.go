package engine

import (
	"time"

	"acceptableads/internal/domainutil"
	"acceptableads/internal/filter"
	"acceptableads/internal/htmldom"
)

// Session is a concurrency-safe view of an Engine: the engine's compiled
// indexes are immutable after construction, so any number of sessions can
// match in parallel, each recording activations to its own Recorder. The
// site survey runs one session per crawl worker.
//
// Engine's own MatchRequest/HideElements/PagePermissions methods remain as
// the single-threaded convenience API (they use the engine-level recorder
// installed with SetRecorder).
type Session struct {
	e   *Engine
	rec Recorder
}

// NewSession creates an independent matching session. rec may be nil for
// an unrecorded session.
func (e *Engine) NewSession(rec Recorder) *Session {
	return &Session{e: e, rec: rec}
}

func (s *Session) record(a Activation) {
	if m := s.e.metrics; m != nil {
		if c := m.activations[a.List]; c != nil {
			c.Inc()
		}
	}
	if s.rec != nil {
		s.rec.Record(a)
	}
}

// MatchRequest is the consolidated decision entry point. The default is
// the instrumented evaluation, recording the effective filter to the
// session's recorder; WithShortCircuit and WithLinearScan select the
// production and the ablation evaluation orders. See Engine.MatchRequest
// for the semantics.
func (s *Session) MatchRequest(req *Request, opts ...MatchOption) Decision {
	var mo matchOpts
	for _, o := range opts {
		o(&mo)
	}
	req.prepare()
	lower, third, kws := req.lower, req.third, req.kws

	var d Decision
	if mo.shortCircuit {
		// Production order: the exception side is only consulted after a
		// blocking filter matches. Records nothing.
		c := s.e.blocking.find(req, lower, third, kws)
		if c == nil {
			return d
		}
		d.BlockedBy = &Match{Filter: c.f, List: c.list}
		if x := s.e.exceptions.find(req, lower, third, kws); x != nil {
			d.AllowedBy = &Match{Filter: x.f, List: x.list}
			d.Verdict = Allowed
			return d
		}
		d.Verdict = Blocked
		return d
	}
	if mo.linear {
		// Index-free ablation: scan every filter on both sides. Records
		// nothing.
		if c := s.e.blocking.findLinear(req, lower, third); c != nil {
			d.BlockedBy = &Match{Filter: c.f, List: c.list}
		}
		if c := s.e.exceptions.findLinear(req, lower, third); c != nil {
			d.AllowedBy = &Match{Filter: c.f, List: c.list}
		}
		switch {
		case d.AllowedBy != nil:
			d.Verdict = Allowed
		case d.BlockedBy != nil:
			d.Verdict = Blocked
		}
		return d
	}

	m := s.e.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	if c := s.e.blocking.find(req, lower, third, kws); c != nil {
		d.BlockedBy = &Match{Filter: c.f, List: c.list}
	}
	if c := s.e.exceptions.find(req, lower, third, kws); c != nil {
		d.AllowedBy = &Match{Filter: c.f, List: c.list}
	}
	switch {
	case d.AllowedBy != nil:
		d.Verdict = Allowed
		s.record(Activation{Filter: d.AllowedBy.Filter, List: d.AllowedBy.List,
			Kind: ActRequest, URL: req.URL, PageHost: req.DocumentHost})
	case d.BlockedBy != nil:
		d.Verdict = Blocked
		s.record(Activation{Filter: d.BlockedBy.Filter, List: d.BlockedBy.List,
			Kind: ActRequest, URL: req.URL, PageHost: req.DocumentHost})
	}
	// $donottrack signalling (Appendix A.4): a matching DNT filter with
	// no matching DNT exception asks for the header; it never blocks.
	if len(s.e.dnt.all) > 0 {
		if s.e.dnt.find(req, lower, third, kws) != nil &&
			s.e.dntExceptions.find(req, lower, third, kws) == nil {
			d.DoNotTrack = true
		}
	}
	if m != nil {
		m.attempts.Inc()
		m.verdict(d.Verdict)
		m.latency.Observe(time.Since(start))
	}
	return d
}

// PagePermissions evaluates page-level allowances, recording to the
// session. See Engine.PagePermissions.
func (s *Session) PagePermissions(pageURL, sitekeyB64 string) PageFlags {
	host := domainutil.HostOf(pageURL)
	lower := lowerASCII(pageURL)
	kws := urlKeywords(make([]string, 0, 16), lower)

	var flags PageFlags
	probe := func(t filter.ContentType) *compiledRequest {
		req := &Request{URL: pageURL, Type: t, DocumentHost: host, Sitekey: sitekeyB64}
		// The page request is first-party to itself.
		return s.e.exceptions.find(req, lower, false, kws)
	}
	if c := probe(filter.TypeDocument); c != nil {
		flags.DocumentAllowed = true
		flags.DocumentBy = &Match{Filter: c.f, List: c.list}
		s.record(Activation{Filter: c.f, List: c.list, Kind: ActDocument,
			URL: pageURL, PageHost: host})
	}
	if c := probe(filter.TypeElemHide); c != nil {
		flags.ElemHideDisabled = true
		flags.ElemHideBy = &Match{Filter: c.f, List: c.list}
		s.record(Activation{Filter: c.f, List: c.list, Kind: ActDocument,
			URL: pageURL, PageHost: host})
	}
	return flags
}

// HideElements applies element hiding, recording to the session. See
// Engine.HideElements. WithLinearScan evaluates every hiding selector
// against the document instead of the id/class candidate index.
func (s *Session) HideElements(doc *htmldom.Node, pageURL, docHost string, opts ...MatchOption) []ElementMatch {
	var mo matchOpts
	for _, o := range opts {
		o(&mo)
	}
	candidates := s.e.elemHide.all
	if !mo.linear {
		candidates = s.e.elemHideCandidates(doc)
	}
	return s.applyElemHide(candidates, doc, pageURL, docHost)
}

func (s *Session) applyElemHide(candidates []*compiledElem, doc *htmldom.Node, pageURL, docHost string) []ElementMatch {
	var out []ElementMatch
	for _, c := range candidates {
		if !c.f.AppliesToDomain(docHost) {
			continue
		}
		nodes := c.sel.MatchAll(doc)
		if len(nodes) == 0 {
			continue
		}
		exc := s.e.findElemException(c.f.Selector, docHost)
		for _, n := range nodes {
			m := ElementMatch{Node: n, HiddenBy: Match{Filter: c.f, List: c.list}}
			if exc != nil {
				m.AllowedBy = &Match{Filter: exc.f, List: exc.list}
			}
			out = append(out, m)
			s.record(Activation{Filter: c.f, List: c.list, Kind: ActElement,
				URL: pageURL, PageHost: docHost})
			if exc != nil {
				s.record(Activation{Filter: exc.f, List: exc.list, Kind: ActElement,
					URL: pageURL, PageHost: docHost})
			}
		}
	}
	return out
}
