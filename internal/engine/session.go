package engine

import (
	"time"

	"acceptableads/internal/domainutil"
	"acceptableads/internal/filter"
	"acceptableads/internal/htmldom"
)

// Session is a concurrency-safe view of an Engine: the engine's compiled
// indexes are immutable after construction, so any number of sessions can
// match in parallel, each recording activations to its own Recorder. The
// site survey runs one session per crawl worker.
//
// Engine's own MatchRequest/HideElements/PagePermissions methods remain as
// the single-threaded convenience API (they use the engine-level recorder
// installed with SetRecorder).
type Session struct {
	e   *Engine
	rec Recorder
	// mask is the profile's list-membership bitmask: only filters whose
	// list bit intersects it participate. A session on the flat engine
	// carries the all-lists mask, so the gate never skips there.
	mask uint64
}

// NewSession creates an independent matching session over the full
// engine (every loaded list). rec may be nil for an unrecorded session;
// View.NewSession creates a session restricted to a profile.
func (e *Engine) NewSession(rec Recorder) *Session {
	return &Session{e: e, rec: rec, mask: e.allMask}
}

func (s *Session) record(a Activation) {
	if m := s.e.metrics; m != nil {
		if c := m.activations[a.List]; c != nil {
			c.Inc()
		}
	}
	if s.rec != nil {
		s.rec.Record(a)
	}
}

// MatchRequest is the consolidated decision entry point. The default is
// the instrumented evaluation, recording the effective filter to the
// session's recorder; WithShortCircuit and WithLinearScan select the
// production and the ablation evaluation orders. See Engine.MatchRequest
// for the semantics.
//
// In short-circuit mode on a prepared Request this path performs zero heap
// allocations: the keyword hashes, domain boundaries, lowered URL, and
// third-party bit come from the request's memos, the unified index resolves
// blocking and exception in one probe pass, and the Decision embeds its
// matches by value. TestMatchRequestZeroAlloc pins the property.
func (s *Session) MatchRequest(req *Request, opts ...MatchOption) Decision {
	var bits uint8
	var tr *Trail
	for _, o := range opts {
		bits |= o.bits
		if o.trail != nil {
			tr = o.trail
		}
	}
	if tr != nil {
		tr.reset(trailMode(bits), bits&optShortCircuit != 0)
		tr.lists = s.e.lists
	}
	req.prepare()
	if tr != nil {
		tr.KeywordHashes = len(req.kwh)
		tr.HostKeys = len(req.hostKeys)
	}
	idx := s.e.index

	var d Decision
	if bits&optLinear != 0 {
		// Index-free ablation: scan every filter on both sides. Records
		// no activations and no attribution. Combined with
		// WithShortCircuit it keeps production evaluation order, just
		// without the index.
		if bits&optShortCircuit != 0 {
			c := idx.findLinear(req, roleBlocking, s.mask, tr)
			if c == nil {
				return finishTrail(tr, &d, nil, nil)
			}
			d.blocked = Match{Filter: c.f, List: s.e.listOf(c.listBit)}
			if x := idx.findLinear(req, roleException, s.mask, tr); x != nil {
				d.allowed = Match{Filter: x.f, List: s.e.listOf(x.listBit)}
				d.Verdict = Allowed
				return finishTrail(tr, &d, c, x)
			}
			d.Verdict = Blocked
			return finishTrail(tr, &d, c, nil)
		}
		c := idx.findLinear(req, roleBlocking, s.mask, tr)
		x := idx.findLinear(req, roleException, s.mask, tr)
		if c != nil {
			d.blocked = Match{Filter: c.f, List: s.e.listOf(c.listBit)}
		}
		if x != nil {
			d.allowed = Match{Filter: x.f, List: s.e.listOf(x.listBit)}
		}
		switch {
		case d.allowed.Filter != nil:
			d.Verdict = Allowed
		case d.blocked.Filter != nil:
			d.Verdict = Blocked
		}
		return finishTrail(tr, &d, c, x)
	}
	if bits&optShortCircuit != 0 {
		// Production order: the exception side only decides anything
		// after a blocking filter matches. One resolve pass finds the
		// minimum-id match of both roles across the keyword buckets, the
		// host index and the slow bucket; the packed words kill almost
		// every candidate before its gates run. The effective filter's
		// attribution slot is bumped — one indexed atomic add, no
		// allocation.
		var res [numRoles]*compiledRequest
		idx.resolve(req, maskBlocking|maskException, s.mask, &res, tr)
		c := res[roleBlocking]
		if c == nil {
			return finishTrail(tr, &d, nil, nil)
		}
		d.blocked = Match{Filter: c.f, List: s.e.listOf(c.listBit)}
		if x := res[roleException]; x != nil {
			d.allowed = Match{Filter: x.f, List: s.e.listOf(x.listBit)}
			d.Verdict = Allowed
			s.e.hit(x.id)
			return finishTrail(tr, &d, c, x)
		}
		d.Verdict = Blocked
		s.e.hit(c.id)
		return finishTrail(tr, &d, c, nil)
	}

	// Instrumented mode: both sides always evaluated, DNT signalling
	// resolved, effective filter recorded and attributed, metrics
	// observed.
	m := s.e.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	want := maskBlocking | maskException
	if idx.hasDNT() {
		want |= maskDNT | maskDNTException
	}
	var res [numRoles]*compiledRequest
	idx.resolve(req, want, s.mask, &res, tr)
	if c := res[roleBlocking]; c != nil {
		d.blocked = Match{Filter: c.f, List: s.e.listOf(c.listBit)}
	}
	if c := res[roleException]; c != nil {
		d.allowed = Match{Filter: c.f, List: s.e.listOf(c.listBit)}
	}
	switch {
	case d.allowed.Filter != nil:
		d.Verdict = Allowed
		s.e.hit(res[roleException].id)
		s.record(Activation{Filter: d.allowed.Filter, List: d.allowed.List,
			Kind: ActRequest, URL: req.URL, PageHost: req.DocumentHost})
	case d.blocked.Filter != nil:
		d.Verdict = Blocked
		s.e.hit(res[roleBlocking].id)
		s.record(Activation{Filter: d.blocked.Filter, List: d.blocked.List,
			Kind: ActRequest, URL: req.URL, PageHost: req.DocumentHost})
	}
	// $donottrack signalling (Appendix A.4): a matching DNT filter with
	// no matching DNT exception asks for the header; it never blocks.
	if dnt := res[roleDNT]; dnt != nil && res[roleDNTException] == nil {
		d.DoNotTrack = true
		s.e.hit(dnt.id)
	}
	if m != nil {
		m.attempts.Inc()
		m.verdict(d.Verdict)
		m.latency.Observe(time.Since(start))
	}
	return finishTrail(tr, &d, res[roleBlocking], res[roleException])
}

// trailMode names the evaluation order an option set selects.
func trailMode(bits uint8) string {
	switch {
	case bits&optLinear != 0 && bits&optShortCircuit != 0:
		return "short-circuit+linear"
	case bits&optLinear != 0:
		return "instrumented+linear"
	case bits&optShortCircuit != 0:
		return "short-circuit"
	default:
		return "instrumented"
	}
}

// finishTrail stamps the outcome onto a non-nil trail and passes the
// decision through, keeping the match paths' early returns one-liners.
func finishTrail(tr *Trail, d *Decision, block, exc *compiledRequest) Decision {
	if tr != nil {
		tr.finish(d, block, exc)
	}
	return *d
}

// PagePermissions evaluates page-level allowances, recording to the
// session. See Engine.PagePermissions. The probe goes through NewRequest,
// so the lowered URL, keyword hashes and domain boundaries are derived
// once per call and shared by both the $document and the $elemhide probe
// (the Type flip does not invalidate the memos — they key on URL and
// document host only).
func (s *Session) PagePermissions(pageURL, sitekeyB64 string) PageFlags {
	req, err := NewRequest(pageURL, pageURL, filter.TypeDocument)
	if err != nil {
		// Unparseable page URL: fall back to a best-effort literal
		// request, as the pre-validation engine did.
		req = &Request{URL: pageURL, Type: filter.TypeDocument,
			DocumentHost: domainutil.HostOf(pageURL)}
		req.prepare()
	}
	req.Sitekey = sitekeyB64
	idx := s.e.index

	var flags PageFlags
	probe := func(t filter.ContentType) *compiledRequest {
		req.Type = t
		var res [numRoles]*compiledRequest
		idx.resolve(req, maskException, s.mask, &res, nil)
		return res[roleException]
	}
	if c := probe(filter.TypeDocument); c != nil {
		flags.DocumentAllowed = true
		flags.DocumentBy = &Match{Filter: c.f, List: s.e.listOf(c.listBit)}
		s.e.hit(c.id)
		s.record(Activation{Filter: c.f, List: s.e.listOf(c.listBit), Kind: ActDocument,
			URL: pageURL, PageHost: req.DocumentHost})
	}
	if c := probe(filter.TypeElemHide); c != nil {
		flags.ElemHideDisabled = true
		flags.ElemHideBy = &Match{Filter: c.f, List: s.e.listOf(c.listBit)}
		s.e.hit(c.id)
		s.record(Activation{Filter: c.f, List: s.e.listOf(c.listBit), Kind: ActDocument,
			URL: pageURL, PageHost: req.DocumentHost})
	}
	return flags
}

// HideElements applies element hiding, recording to the session. See
// Engine.HideElements. WithLinearScan evaluates every hiding selector
// against the document instead of the id/class candidate index.
func (s *Session) HideElements(doc *htmldom.Node, pageURL, docHost string, opts ...MatchOption) []ElementMatch {
	var bits uint8
	for _, o := range opts {
		bits |= o.bits
	}
	candidates := s.e.allHideCandidates(s.mask)
	if bits&optLinear == 0 {
		candidates = s.e.elemHideCandidates(doc, s.mask)
	}
	return s.applyElemHide(candidates, doc, pageURL, docHost)
}

func (s *Session) applyElemHide(candidates []*compiledElem, doc *htmldom.Node, pageURL, docHost string) []ElementMatch {
	var out []ElementMatch
	for _, c := range candidates {
		if !c.f.AppliesToDomain(docHost) {
			continue
		}
		nodes := c.sel.MatchAll(doc)
		if len(nodes) == 0 {
			continue
		}
		exc := s.e.findElemException(c.f.Selector, docHost, s.mask)
		for _, n := range nodes {
			m := ElementMatch{Node: n, HiddenBy: Match{Filter: c.f, List: s.e.listOf(c.listBit)}}
			if exc != nil {
				m.AllowedBy = &Match{Filter: exc.f, List: s.e.listOf(exc.listBit)}
			}
			out = append(out, m)
			s.e.hit(c.id)
			s.record(Activation{Filter: c.f, List: s.e.listOf(c.listBit), Kind: ActElement,
				URL: pageURL, PageHost: docHost})
			if exc != nil {
				s.e.hit(exc.id)
				s.record(Activation{Filter: exc.f, List: s.e.listOf(exc.listBit), Kind: ActElement,
					URL: pageURL, PageHost: docHost})
			}
		}
	}
	return out
}
