package engine

import (
	"strings"
	"testing"

	"acceptableads/internal/xrand"
)

// TestKeywordHashesMatchReference: the in-place hashed probe set must be
// exactly the fnv64 of the reference substring extraction, deduplicated in
// first-occurrence order.
func TestKeywordHashesMatchReference(t *testing.T) {
	rng := xrand.New(31337)
	urls := []string{
		"http://ads.example.com/ads/ads/banner.gif", // repeated run → one probe
		"http://stats.g.doubleclick.net/r/collect",
		"http://x.example/%7e%7e/abc%def",
		"ab/cd/ef", // only too-short runs
		"",
	}
	for i := 0; i < 500; i++ {
		urls = append(urls, strings.ToLower(genExoticURL(rng)))
	}
	for _, u := range urls {
		var want []uint64
		for _, kw := range urlKeywords(nil, u) {
			h := fnv64(kw)
			dup := false
			for _, have := range want {
				if have == h {
					dup = true
					break
				}
			}
			if !dup {
				want = append(want, h)
			}
		}
		got := appendURLKeywordHashes(nil, u)
		if len(got) != len(want) {
			t.Fatalf("%q: %d hashes, want %d", u, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q: hash[%d] = %#x, want %#x", u, i, got[i], want[i])
			}
		}
	}
}

// TestKeywordHashesDeduped: a URL repeating the same keyword run probes its
// bucket once.
func TestKeywordHashesDeduped(t *testing.T) {
	got := appendURLKeywordHashes(nil, "http://x.example/ads/ads/ads/a.gif")
	counts := make(map[uint64]int)
	for _, h := range got {
		counts[h]++
	}
	if counts[fnv64("ads")] != 1 {
		t.Errorf(`"ads" hashed %d times, want 1 (probes = %d)`, counts[fnv64("ads")], len(got))
	}
	for h, n := range counts {
		if n > 1 {
			t.Errorf("hash %#x appears %d times", h, n)
		}
	}
}

// TestPagePermissionsMemoized: the page-permission probe goes through
// NewRequest, so one call derives the URL memos exactly once and the
// $document and $elemhide probes share them.
func TestPagePermissionsMemoized(t *testing.T) {
	e := mustEngine(t,
		listOf("easylist", "||ads.example^"),
		listOf("exceptionrules", "@@||parked.example^$document\n@@||ask.com^$elemhide"),
	)
	before := prepares.Load()
	if f := e.PagePermissions("http://parked.example/landing", ""); !f.DocumentAllowed {
		t.Errorf("DocumentAllowed not granted: %+v", f)
	}
	if f := e.PagePermissions("http://www.ask.com/", ""); !f.ElemHideDisabled || f.DocumentAllowed {
		t.Errorf("ElemHide flags wrong: %+v", f)
	}
	if f := e.PagePermissions("http://plain.example/", ""); f.DocumentAllowed || f.ElemHideDisabled {
		t.Errorf("unexpected grant: %+v", f)
	}
	if got := prepares.Load() - before; got != 3 {
		t.Errorf("prepare ran %d times across 3 PagePermissions calls, want 3 (once per call)", got)
	}
}
