package engine

import (
	"acceptableads/internal/css"
	"acceptableads/internal/filter"
	"acceptableads/internal/htmldom"
)

// compiledElem is one element hiding filter (or exception) with its
// compiled selector.
type compiledElem struct {
	f    *filter.Filter
	list string
	sel  *css.Selector
	// id is the filter's dense attribution slot in Engine.hits; line is
	// its 1-based position in the source list's text.
	id   uint32
	line int32
	// listBit is the source list's membership bit; profile views gate
	// hiding filters and exceptions on it exactly like request filters.
	listBit uint64
}

// elemHideIndex holds hiding filters indexed by the id/class their subject
// compound requires, with a slow bucket for selectors needing a full scan,
// plus hiding exceptions keyed by selector text (Adblock Plus cancels a
// hiding rule when an exception with the identical selector applies on the
// page's domain).
type elemHideIndex struct {
	byKey      map[string][]*compiledElem // "#id" or ".class" → filters
	slow       []*compiledElem
	all        []*compiledElem            // linear view for the ablation
	exceptions map[string][]*compiledElem // selector text → exceptions
}

func newElemHideIndex() *elemHideIndex {
	return &elemHideIndex{
		byKey:      make(map[string][]*compiledElem),
		exceptions: make(map[string][]*compiledElem),
	}
}

// addCompiled files a hiding filter whose selector was already compiled
// (compilation is hoisted into compileFilters so it can parallelize).
func (idx *elemHideIndex) addCompiled(list string, f *filter.Filter, sel *css.Selector, id uint32, line int32, bit uint64) {
	c := &compiledElem{f: f, list: list, sel: sel, id: id, line: line, listBit: bit}
	if f.Kind == filter.KindElemHideException {
		idx.exceptions[f.Selector] = append(idx.exceptions[f.Selector], c)
		return
	}
	idx.all = append(idx.all, c)
	if key, ok := sel.Key(); ok {
		idx.byKey[key] = append(idx.byKey[key], c)
	} else {
		idx.slow = append(idx.slow, c)
	}
}

// ElementMatch is one element hiding decision: a node a hiding filter
// selected, and — when an exception cancelled the hide — the exception.
type ElementMatch struct {
	Node *htmldom.Node
	// HiddenBy is the hiding filter whose selector matched.
	HiddenBy Match
	// AllowedBy is the cancelling exception, nil if the node stays
	// hidden.
	AllowedBy *Match
}

// Hidden reports whether the element ends up hidden.
func (m *ElementMatch) Hidden() bool { return m.AllowedBy == nil }

// HideElements applies element hiding to a parsed document served from
// docHost. It returns every hiding decision in document order and records
// activations: one ActElement per hidden node, and one per exception
// cancellation (the whitelist activations the survey counts, such as
// reddit.com#@##ad_main).
//
// Callers must consult PagePermissions first: when ElemHideDisabled or
// DocumentAllowed is set, Adblock Plus skips element hiding entirely.
//
// WithLinearScan evaluates every hiding selector against the document
// instead of consulting the id/class candidate index — the ablation
// baseline quantifying what the index buys.
func (e *Engine) HideElements(doc *htmldom.Node, pageURL, docHost string, opts ...MatchOption) []ElementMatch {
	return (&Session{e: e, rec: e.recorder, mask: e.allMask}).HideElements(doc, pageURL, docHost, opts...)
}

// elemHideCandidates gathers the hiding filters whose indexed id/class is
// present in the document, plus the slow bucket, restricted to the
// profile mask.
func (e *Engine) elemHideCandidates(doc *htmldom.Node, mask uint64) []*compiledElem {
	idx := e.elemHide
	seen := make(map[*compiledElem]bool)
	var out []*compiledElem
	doc.Walk(func(n *htmldom.Node) bool {
		if !n.IsElement() {
			return true
		}
		if id := n.ID(); id != "" {
			for _, c := range idx.byKey["#"+id] {
				if c.listBit&mask != 0 && !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		for _, cl := range n.Classes() {
			for _, c := range idx.byKey["."+cl] {
				if c.listBit&mask != 0 && !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		return true
	})
	for _, c := range idx.slow {
		if c.listBit&mask != 0 {
			out = append(out, c)
		}
	}
	return out
}

// allHideCandidates is the linear-scan candidate set under a profile
// mask; the full mask returns the shared slice without copying.
func (e *Engine) allHideCandidates(mask uint64) []*compiledElem {
	if mask == e.allMask {
		return e.elemHide.all
	}
	var out []*compiledElem
	for _, c := range e.elemHide.all {
		if c.listBit&mask != 0 {
			out = append(out, c)
		}
	}
	return out
}

// findElemException returns the first in-profile hiding exception with
// the identical selector applying on docHost. An exception from a list
// outside the profile must not cancel hides, so the mask gates here too.
func (e *Engine) findElemException(selector, docHost string, mask uint64) *compiledElem {
	for _, x := range e.elemHide.exceptions[selector] {
		if x.listBit&mask == 0 {
			continue
		}
		if x.f.AppliesToDomain(docHost) {
			return x
		}
	}
	return nil
}
