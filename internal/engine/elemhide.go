package engine

import (
	"acceptableads/internal/css"
	"acceptableads/internal/filter"
	"acceptableads/internal/htmldom"
)

// compiledElem is one element hiding filter (or exception) with its
// compiled selector.
type compiledElem struct {
	f    *filter.Filter
	list string
	sel  *css.Selector
	// id is the filter's dense attribution slot in Engine.hits; line is
	// its 1-based position in the source list's text.
	id   uint32
	line int32
}

// elemHideIndex holds hiding filters indexed by the id/class their subject
// compound requires, with a slow bucket for selectors needing a full scan,
// plus hiding exceptions keyed by selector text (Adblock Plus cancels a
// hiding rule when an exception with the identical selector applies on the
// page's domain).
type elemHideIndex struct {
	byKey      map[string][]*compiledElem // "#id" or ".class" → filters
	slow       []*compiledElem
	all        []*compiledElem            // linear view for the ablation
	exceptions map[string][]*compiledElem // selector text → exceptions
}

func newElemHideIndex() *elemHideIndex {
	return &elemHideIndex{
		byKey:      make(map[string][]*compiledElem),
		exceptions: make(map[string][]*compiledElem),
	}
}

// addCompiled files a hiding filter whose selector was already compiled
// (compilation is hoisted into compileFilters so it can parallelize).
func (idx *elemHideIndex) addCompiled(list string, f *filter.Filter, sel *css.Selector, id uint32, line int32) {
	c := &compiledElem{f: f, list: list, sel: sel, id: id, line: line}
	if f.Kind == filter.KindElemHideException {
		idx.exceptions[f.Selector] = append(idx.exceptions[f.Selector], c)
		return
	}
	idx.all = append(idx.all, c)
	if key, ok := sel.Key(); ok {
		idx.byKey[key] = append(idx.byKey[key], c)
	} else {
		idx.slow = append(idx.slow, c)
	}
}

// ElementMatch is one element hiding decision: a node a hiding filter
// selected, and — when an exception cancelled the hide — the exception.
type ElementMatch struct {
	Node *htmldom.Node
	// HiddenBy is the hiding filter whose selector matched.
	HiddenBy Match
	// AllowedBy is the cancelling exception, nil if the node stays
	// hidden.
	AllowedBy *Match
}

// Hidden reports whether the element ends up hidden.
func (m *ElementMatch) Hidden() bool { return m.AllowedBy == nil }

// HideElements applies element hiding to a parsed document served from
// docHost. It returns every hiding decision in document order and records
// activations: one ActElement per hidden node, and one per exception
// cancellation (the whitelist activations the survey counts, such as
// reddit.com#@##ad_main).
//
// Callers must consult PagePermissions first: when ElemHideDisabled or
// DocumentAllowed is set, Adblock Plus skips element hiding entirely.
//
// WithLinearScan evaluates every hiding selector against the document
// instead of consulting the id/class candidate index — the ablation
// baseline quantifying what the index buys.
func (e *Engine) HideElements(doc *htmldom.Node, pageURL, docHost string, opts ...MatchOption) []ElementMatch {
	return (&Session{e: e, rec: e.recorder}).HideElements(doc, pageURL, docHost, opts...)
}

// HideElementsLinear is the ablation baseline without the candidate index.
//
// Deprecated: use HideElements(doc, pageURL, docHost, WithLinearScan()).
func (e *Engine) HideElementsLinear(doc *htmldom.Node, pageURL, docHost string) []ElementMatch {
	return e.HideElements(doc, pageURL, docHost, WithLinearScan())
}

// elemHideCandidates gathers the hiding filters whose indexed id/class is
// present in the document, plus the slow bucket.
func (e *Engine) elemHideCandidates(doc *htmldom.Node) []*compiledElem {
	idx := e.elemHide
	seen := make(map[*compiledElem]bool)
	var out []*compiledElem
	doc.Walk(func(n *htmldom.Node) bool {
		if !n.IsElement() {
			return true
		}
		if id := n.ID(); id != "" {
			for _, c := range idx.byKey["#"+id] {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		for _, cl := range n.Classes() {
			for _, c := range idx.byKey["."+cl] {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		return true
	})
	return append(out, idx.slow...)
}

func (e *Engine) findElemException(selector, docHost string) *compiledElem {
	for _, x := range e.elemHide.exceptions[selector] {
		if x.f.AppliesToDomain(docHost) {
			return x
		}
	}
	return nil
}
