package engine

import (
	"acceptableads/internal/css"
	"acceptableads/internal/filter"
	"acceptableads/internal/htmldom"
)

// compiledElem is one element hiding filter (or exception) with its
// compiled selector.
type compiledElem struct {
	f   *filter.Filter
	sel *css.Selector
	// id is the filter's dense attribution slot in Engine.hits; line is
	// its 1-based position in the source list's text.
	id   uint32
	line int32
	// listBit is the source list's membership bit; profile views gate
	// hiding filters and exceptions on it exactly like request filters.
	listBit uint64
}

// elemHideIndex holds hiding filters indexed by the id/class their subject
// compound requires, with a slow bucket for selectors needing a full scan,
// plus hiding exceptions keyed by selector text (Adblock Plus cancels a
// hiding rule when an exception with the identical selector applies on the
// page's domain).
type elemHideIndex struct {
	byKey      map[css.IndexKey][]*compiledElem // required id/class → filters
	slow       []*compiledElem
	all        []*compiledElem            // linear view for the ablation
	exceptions map[string][]*compiledElem // selector text → exceptions
}

func newElemHideIndex() *elemHideIndex {
	return &elemHideIndex{
		byKey:      make(map[css.IndexKey][]*compiledElem),
		exceptions: make(map[string][]*compiledElem),
	}
}

// addCompiled files a hiding filter whose selector was already compiled
// (compilation is hoisted into compileFilters so it can parallelize) and
// whose compiledElem cell already lives in a list arena.
func (idx *elemHideIndex) addCompiled(c *compiledElem) {
	if c.f.Kind == filter.KindElemHideException {
		idx.exceptions[c.f.Selector] = append(idx.exceptions[c.f.Selector], c)
		return
	}
	idx.all = append(idx.all, c)
	if key, ok := c.sel.IndexKey(); ok {
		idx.byKey[key] = append(idx.byKey[key], c)
	} else {
		idx.slow = append(idx.slow, c)
	}
}

// install bulk-loads a decoded slab of compiled cells, the decode-path
// replacement for per-filter addCompiled calls: both maps are built at
// final size and the per-key fan-out slices are carved from one shared
// slab, so a snapshot load costs a handful of allocations instead of one
// map-growth-and-append per filter. Keys that repeat (rare) fall back to
// an ordinary append; the orphaned slab cell is the accepted waste.
func (idx *elemHideIndex) install(elems []compiledElem) {
	nExc := 0
	for i := range elems {
		if elems[i].f.Kind == filter.KindElemHideException {
			nExc++
		}
	}
	nHide := len(elems) - nExc
	idx.byKey = make(map[css.IndexKey][]*compiledElem, nHide)
	idx.exceptions = make(map[string][]*compiledElem, nExc)
	idx.all = make([]*compiledElem, 0, nHide)
	slab := make([]*compiledElem, 0, len(elems))
	single := func(c *compiledElem) []*compiledElem {
		slab = append(slab, c)
		return slab[len(slab)-1 : len(slab) : len(slab)]
	}
	for i := range elems {
		c := &elems[i]
		if c.f.Kind == filter.KindElemHideException {
			if prev, ok := idx.exceptions[c.f.Selector]; ok {
				idx.exceptions[c.f.Selector] = append(prev, c)
			} else {
				idx.exceptions[c.f.Selector] = single(c)
			}
			continue
		}
		idx.all = append(idx.all, c)
		if key, ok := c.sel.IndexKey(); ok {
			if prev, ok := idx.byKey[key]; ok {
				idx.byKey[key] = append(prev, c)
			} else {
				idx.byKey[key] = single(c)
			}
		} else {
			idx.slow = append(idx.slow, c)
		}
	}
}

// ElementMatch is one element hiding decision: a node a hiding filter
// selected, and — when an exception cancelled the hide — the exception.
type ElementMatch struct {
	Node *htmldom.Node
	// HiddenBy is the hiding filter whose selector matched.
	HiddenBy Match
	// AllowedBy is the cancelling exception, nil if the node stays
	// hidden.
	AllowedBy *Match
}

// Hidden reports whether the element ends up hidden.
func (m *ElementMatch) Hidden() bool { return m.AllowedBy == nil }

// HideElements applies element hiding to a parsed document served from
// docHost. It returns every hiding decision in document order and records
// activations: one ActElement per hidden node, and one per exception
// cancellation (the whitelist activations the survey counts, such as
// reddit.com#@##ad_main).
//
// Callers must consult PagePermissions first: when ElemHideDisabled or
// DocumentAllowed is set, Adblock Plus skips element hiding entirely.
//
// WithLinearScan evaluates every hiding selector against the document
// instead of consulting the id/class candidate index — the ablation
// baseline quantifying what the index buys.
func (e *Engine) HideElements(doc *htmldom.Node, pageURL, docHost string, opts ...MatchOption) []ElementMatch {
	return (&Session{e: e, rec: e.recorder, mask: e.allMask}).HideElements(doc, pageURL, docHost, opts...)
}

// elemHideCandidates gathers the hiding filters whose indexed id/class is
// present in the document, plus the slow bucket, restricted to the
// profile mask.
func (e *Engine) elemHideCandidates(doc *htmldom.Node, mask uint64) []*compiledElem {
	idx := e.elemHide
	seen := make(map[*compiledElem]bool)
	var out []*compiledElem
	doc.Walk(func(n *htmldom.Node) bool {
		if !n.IsElement() {
			return true
		}
		if id := n.ID(); id != "" {
			for _, c := range idx.byKey[css.IndexKey{Kind: '#', Name: id}] {
				if c.listBit&mask != 0 && !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		for _, cl := range n.Classes() {
			for _, c := range idx.byKey[css.IndexKey{Kind: '.', Name: cl}] {
				if c.listBit&mask != 0 && !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		return true
	})
	for _, c := range idx.slow {
		if c.listBit&mask != 0 {
			out = append(out, c)
		}
	}
	return out
}

// allHideCandidates is the linear-scan candidate set under a profile
// mask; the full mask returns the shared slice without copying.
func (e *Engine) allHideCandidates(mask uint64) []*compiledElem {
	if mask == e.allMask {
		return e.elemHide.all
	}
	var out []*compiledElem
	for _, c := range e.elemHide.all {
		if c.listBit&mask != 0 {
			out = append(out, c)
		}
	}
	return out
}

// findElemException returns the first in-profile hiding exception with
// the identical selector applying on docHost. An exception from a list
// outside the profile must not cancel hides, so the mask gates here too.
func (e *Engine) findElemException(selector, docHost string, mask uint64) *compiledElem {
	for _, x := range e.elemHide.exceptions[selector] {
		if x.listBit&mask == 0 {
			continue
		}
		if x.f.AppliesToDomain(docHost) {
			return x
		}
	}
	return nil
}
