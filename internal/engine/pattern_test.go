package engine

import (
	"strings"
	"testing"
	"testing/quick"

	"acceptableads/internal/filter"
	"acceptableads/internal/htmldom"
)

func parseDoc(html string) *htmldom.Node { return htmldom.Parse(html) }

func compile(t *testing.T, line string) *pattern {
	t.Helper()
	f := filter.Parse(line)
	if !f.IsActive() {
		t.Fatalf("filter %q did not parse: %s", line, f.Text)
	}
	p, err := compilePattern(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func matches(p *pattern, url string) bool {
	return p.match(url, strings.ToLower(url), nil)
}

func TestPatternPlain(t *testing.T) {
	p := compile(t, "http://example.com/ads/advert777.gif")
	if !matches(p, "http://example.com/ads/advert777.gif") {
		t.Error("exact URL should match")
	}
	if !matches(p, "http://x.com/redir?http://example.com/ads/advert777.gif") {
		t.Error("implicit wildcards should match substring")
	}
	if matches(p, "http://example.com/ads/advert778.gif") {
		t.Error("different URL should not match")
	}
}

func TestPatternSeparatorEnd(t *testing.T) {
	p := compile(t, "||adzerk.net^")
	for _, url := range []string{
		"http://adzerk.net/x", "http://static.adzerk.net/x",
		"https://adzerk.net", "http://adzerk.net:8080/x",
		"http://adzerk.net?q=1",
	} {
		if !matches(p, url) {
			t.Errorf("%s should match", url)
		}
	}
	for _, url := range []string{
		"http://adzerk.network/x", "http://notadzerk.net/x",
		"http://evil.com/adzerk.net.html", // '.' is not a separator; but path pos is not a domain boundary anyway
	} {
		if matches(p, url) {
			t.Errorf("%s should NOT match", url)
		}
	}
}

func TestPatternSchemeRelative(t *testing.T) {
	p := compile(t, "||adzerk.net^")
	if !matches(p, "//static.adzerk.net/ads.html") {
		t.Error("scheme-relative URL should match domain anchor")
	}
}

func TestPatternStartAnchor(t *testing.T) {
	p := compile(t, "|http://example.com/ad")
	if !matches(p, "http://example.com/ad.jpg") {
		t.Error("prefix should match")
	}
	if matches(p, "http://x.com/q?http://example.com/ad.jpg") {
		t.Error("non-prefix should not match start anchor")
	}
}

func TestPatternEndAnchor(t *testing.T) {
	p := compile(t, "/ad.js|")
	if !matches(p, "http://x.com/dir/ad.js") {
		t.Error("suffix should match")
	}
	if matches(p, "http://x.com/ad.js?x=1") {
		t.Error("non-suffix should not match end anchor")
	}
}

func TestPatternBothAnchors(t *testing.T) {
	p := compile(t, "|http://a.com/x.js|")
	if !matches(p, "http://a.com/x.js") {
		t.Error("exact match expected")
	}
	if matches(p, "http://a.com/x.jsx") || matches(p, "xhttp://a.com/x.js") {
		t.Error("anchored pattern matched with extra bytes")
	}
}

func TestPatternMultiWildcard(t *testing.T) {
	p := compile(t, "||google.com/ads/*/module/*/search.js")
	if !matches(p, "http://google.com/ads/a/module/b/search.js") {
		t.Error("two-star pattern should match")
	}
	if matches(p, "http://google.com/ads/a/other/b/search.js") {
		t.Error("missing middle segment should not match")
	}
	// Segment order matters.
	if matches(p, "http://google.com/module/a/ads/b/search.js") {
		t.Error("out-of-order segments should not match")
	}
}

func TestPatternSeparatorInsideURL(t *testing.T) {
	// Note: "/banner^ad/" would parse as a regex filter (slash-delimited),
	// so the separator test uses a bare pattern with implicit wildcards.
	p := compile(t, "banner^ad")
	if !matches(p, "http://x.com/banner/ad/1.png") {
		t.Error("'/' should satisfy '^'")
	}
	if !matches(p, "http://x.com/banner?ad/") {
		t.Error("'?' should satisfy '^'")
	}
	if matches(p, "http://x.com/banner-ad/") {
		t.Error("'-' must not satisfy '^'")
	}
	if matches(p, "http://x.com/bannerXad/") {
		t.Error("letter must not satisfy '^'")
	}
}

func TestPatternOnlyWildcards(t *testing.T) {
	f := filter.Parse("*$image,domain=x.com")
	p, err := compilePattern(f)
	if err != nil {
		t.Fatal(err)
	}
	if !matches(p, "http://anything.example/at/all") {
		t.Error("wildcard-only pattern should match everything")
	}
}

func TestDomainBoundaries(t *testing.T) {
	got := domainBoundaries("http://a.b.example.com/p.q/r")
	want := []int{7, 9, 11, 19} // after "://", after each dot in host only
	if len(got) != len(want) {
		t.Fatalf("boundaries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", got, want)
		}
	}
}

func TestFilterKeyword(t *testing.T) {
	tests := []struct{ text, want string }{
		{"||adzerk.net^", "adzerk"},
		{"||stats.g.doubleclick.net^", "doubleclick"},
		{"/ad-frame/", "frame"}, // "ad" too short, "frame" bounded by - and /
		{"|http://x/*keyword.js", "http"},
		{"||ab.cd^", ""}, // all runs shorter than 3
		{"*adservice*", ""},
	}
	for _, tt := range tests {
		if got := filterKeyword(tt.text); got != tt.want {
			t.Errorf("filterKeyword(%q) = %q, want %q", tt.text, got, tt.want)
		}
	}
}

func TestURLKeywords(t *testing.T) {
	kws := urlKeywords(nil, "http://stats.g.doubleclick.net/r/collect")
	has := func(k string) bool {
		for _, x := range kws {
			if x == k {
				return true
			}
		}
		return false
	}
	if !has("stats") || !has("doubleclick") || !has("net") || !has("collect") {
		t.Errorf("keywords = %v", kws)
	}
	if has("g") || has("r") {
		t.Errorf("short runs should be excluded: %v", kws)
	}
}

// Property: for every filter built from a literal path, the keyword-indexed
// and direct pattern matches agree on URLs containing that path.
func TestQuickKeywordSoundness(t *testing.T) {
	words := []string{"banner", "track", "pixel", "adframe", "promo", "widget"}
	prop := func(wi, hostSeed uint8, block bool) bool {
		w := words[int(wi)%len(words)]
		line := "/" + w + "/"
		f := filter.Parse(line)
		p, err := compilePattern(f)
		if err != nil {
			return false
		}
		url := "http://h" + string('a'+hostSeed%26) + ".example/" + w + "/x.gif"
		kw := filterKeyword(anchoredText(p, f.Pattern))
		if kw == "" {
			return true // slow bucket — always probed
		}
		for _, k := range urlKeywords(nil, strings.ToLower(url)) {
			if k == kw {
				return matches(p, url) // bucket hit must imply a real check
			}
		}
		// Bucket miss must imply the pattern cannot match.
		return !matches(p, url)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: matchSegAt never consumes more bytes than remain.
func TestQuickSegConsumption(t *testing.T) {
	prop := func(urlSeed, segSeed []byte) bool {
		alphabet := "ab/.^:x"
		build := func(seed []byte, allowCaret bool) string {
			var b strings.Builder
			for _, s := range seed {
				c := alphabet[int(s)%len(alphabet)]
				if !allowCaret && c == '^' {
					c = '.'
				}
				b.WriteByte(c)
			}
			return b.String()
		}
		url := build(urlSeed, false)
		seg := build(segSeed, true)
		for pos := 0; pos <= len(url); pos++ {
			if n, ok := matchSegAt(url, pos, seg); ok {
				if pos+n > len(url) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLowerASCII(t *testing.T) {
	if lowerASCII("HTTP://Example.COM/AdS") != "http://example.com/ads" {
		t.Error("lowerASCII failed")
	}
	s := "already-lower/123%"
	if lowerASCII(s) != s {
		t.Error("lowerASCII changed a lowercase string")
	}
}

func TestLiteralRegexOptimization(t *testing.T) {
	// "/ad-frame/" (no metacharacters) compiles to a substring pattern
	// that still matches exactly what the regex would.
	f := filter.Parse("/ad-frame/")
	p, err := compilePattern(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.re != nil {
		t.Error("literal regex still compiled to regexp")
	}
	if !matches(p, "http://x.com/a/ad-frame/1.gif") {
		t.Error("literal regex should match its substring")
	}
	if matches(p, "http://x.com/a/ad_frame/1.gif") {
		t.Error("substring must be exact")
	}
	// Metacharacters keep the regexp path.
	g := filter.Parse(`/banner[0-9]+/`)
	q, err := compilePattern(g)
	if err != nil {
		t.Fatal(err)
	}
	if q.re == nil {
		t.Error("real regex lost its regexp")
	}
	// Literal regexes stay in the slow bucket: their edge runs have no
	// boundary characters, so a keyword could miss URLs where the text
	// abuts longer runs ("bad-frames").
	if kw := filterKeyword("ad-frame"); kw != "" {
		t.Errorf("keyword = %q, want none", kw)
	}
}

func TestLiteralRegexCaretStaysRegex(t *testing.T) {
	// '^' inside a slash-delimited filter is a regex anchor, not the
	// Adblock separator; it must stay on the regexp path.
	f := filter.Parse("/^http:/")
	p, err := compilePattern(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.re == nil {
		t.Fatal("anchored regex optimized away")
	}
	if !matches(p, "http://x.com/") || matches(p, "https://x.com/?u=http://y") {
		t.Error("regex anchor semantics broken")
	}
}
