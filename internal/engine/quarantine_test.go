package engine

import (
	"testing"

	"acceptableads/internal/filter"
)

func quarantineEngine(t *testing.T) *Engine {
	t.Helper()
	return mustEngine(t,
		listOf("easylist", "||adzerk.net^$third-party\n/banner/\n||tracker.example^"),
		listOf("exceptionrules", "@@||adzerk.net/reddit/$subdocument,domain=reddit.com"),
	)
}

func quarantineRequest(t *testing.T) *Request {
	t.Helper()
	req, err := NewRequest("http://static.adzerk.net/banner/ads.html", "http://www.reddit.com/", filter.TypeImage)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestPoisonFilterPanicsOnMatch(t *testing.T) {
	e := quarantineEngine(t)
	if n := e.PoisonFilter("/banner/"); n != 1 {
		t.Fatalf("PoisonFilter armed %d filters, want 1", n)
	}
	if n := e.PoisonFilter("no-such-filter"); n != 0 {
		t.Fatalf("PoisonFilter on unknown raw armed %d filters, want 0", n)
	}
	// A URL whose only candidate is the poisoned filter, so the probe is
	// guaranteed to evaluate it (the adzerk request resolves the blocking
	// role at the "adzerk" bucket and never reaches "banner").
	req, err := NewRequest("http://cdn.example.com/banner/ads.png", "http://news.example.com/", filter.TypeImage)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MatchRequest over a poisoned filter did not panic")
		}
	}()
	e.MatchRequest(req, WithShortCircuit())
}

func TestQuarantinePanickingDisablesFilter(t *testing.T) {
	e := quarantineEngine(t)
	e.PoisonFilter("/banner/")
	req := quarantineRequest(t)

	got := e.QuarantinePanicking(req)
	if len(got) != 1 {
		t.Fatalf("QuarantinePanicking = %+v, want exactly the poisoned filter", got)
	}
	if got[0].Filter != "/banner/" || got[0].List != "easylist" || got[0].Line != 2 {
		t.Errorf("quarantined identity = %+v", got[0])
	}
	if n := e.QuarantinedCount(); n != 1 {
		t.Errorf("QuarantinedCount = %d, want 1", n)
	}
	q := e.Quarantined()
	if len(q) != 1 || q[0].Filter != "/banner/" {
		t.Errorf("Quarantined() = %+v", q)
	}

	// The quarantined filter is dead on every evaluation path; the rest of
	// the engine keeps working (the third-party adzerk blocker still fires).
	for _, opt := range [][]MatchOption{
		{WithShortCircuit()},
		{WithLinearScan()},
		nil,
	} {
		d := e.MatchRequest(req, opt...)
		if d.Verdict != Blocked {
			t.Fatalf("opts %v: verdict = %v, want blocked by surviving filter", opt, d.Verdict)
		}
		if m := d.BlockedBy(); m == nil || m.Filter.Raw != "||adzerk.net^$third-party" {
			t.Fatalf("opts %v: BlockedBy = %+v, want the adzerk filter", opt, m)
		}
	}

	// Idempotent: probing again finds nothing new.
	if again := e.QuarantinePanicking(req); len(again) != 0 {
		t.Errorf("second QuarantinePanicking = %+v, want none", again)
	}
	if n := e.QuarantinedCount(); n != 1 {
		t.Errorf("QuarantinedCount after re-probe = %d, want still 1", n)
	}
}

func TestQuarantinePanickingNoCulprit(t *testing.T) {
	e := quarantineEngine(t)
	if got := e.QuarantinePanicking(quarantineRequest(t)); len(got) != 0 {
		t.Fatalf("QuarantinePanicking on healthy engine = %+v, want none", got)
	}
	if n := e.QuarantinedCount(); n != 0 {
		t.Errorf("QuarantinedCount = %d, want 0", n)
	}
}
