package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"acceptableads/internal/css"
	"acceptableads/internal/filter"
)

// compiledUnit is the output of compiling one filter: a request pattern or
// an element hiding selector (whichever the filter kind calls for), or the
// compilation error. Compilation is pure — it touches only the filter —
// which is what lets it fan out across workers while index insertion stays
// sequential and deterministic.
type compiledUnit struct {
	pat *pattern
	sel *css.Selector
	err error
}

// compileChunk is the smallest batch one worker claims at a time: large
// enough that the atomic claim is noise, small enough to balance the tail.
const compileChunk = 256

// parallelThreshold is the filter count below which compileFilters stays
// serial; goroutine fan-out only pays for itself on list-scale inputs.
const parallelThreshold = 512

// minPerWorker is the filter count one worker must have to itself before
// another worker is worth spawning: below this the spawn/handoff overhead
// outweighs the compile work, so the worker count degrades toward serial
// on small inputs instead of fanning out anyway.
const minPerWorker = 2048

// compileWorkers resolves the effective worker count for n filters.
// Requested counts above GOMAXPROCS are capped — extra goroutines on a
// saturated scheduler only add handoff cost — and the count then degrades
// by the per-worker minimum batch, so SetWorkers can never pessimize a
// build below its serial baseline.
func compileWorkers(requested, n int) int {
	w := requested
	if p := runtime.GOMAXPROCS(0); w <= 0 || w > p {
		w = p
	}
	if max := n / minPerWorker; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// compileFilters compiles every filter into a positional result slice.
// workers <= 0 means GOMAXPROCS; the effective count is capped by
// compileWorkers. Results are positional, so the caller's sequential
// insertion (and therefore the built engine, its filter order, and which
// filter a match reports) is byte-for-byte identical regardless of worker
// count.
func compileFilters(filters []*filter.Filter, workers int) []compiledUnit {
	units := make([]compiledUnit, len(filters))
	// Pattern arena: every request filter's compiled pattern lives in one
	// contiguous slab, filled in place by the workers (slot[i] is filter
	// i's slab cell). The slab never grows, so the *pattern handed out in
	// each unit stays valid for the engine's lifetime.
	nReq := 0
	slot := make([]int32, len(filters))
	for i, f := range filters {
		slot[i] = int32(nReq)
		if f.Kind == filter.KindRequestBlock || f.Kind == filter.KindRequestException {
			nReq++
		}
	}
	pats := make([]pattern, nReq)
	workers = compileWorkers(workers, len(filters))
	if workers == 1 || len(filters) < parallelThreshold {
		compileRange(filters, units, pats, slot, 0, len(filters))
		return units
	}
	// Guided batch sizing: aim for a few claims per worker (amortizing the
	// atomic handoff on large lists) without dropping below the chunk that
	// keeps the tail balanced.
	chunk := len(filters) / (workers * 4)
	if chunk < compileChunk {
		chunk = compileChunk
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(filters) {
					return
				}
				hi := lo + chunk
				if hi > len(filters) {
					hi = len(filters)
				}
				compileRange(filters, units, pats, slot, lo, hi)
			}
		}()
	}
	wg.Wait()
	return units
}

func compileRange(filters []*filter.Filter, units []compiledUnit, pats []pattern, slot []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		f := filters[i]
		switch f.Kind {
		case filter.KindRequestBlock, filter.KindRequestException:
			p := &pats[slot[i]]
			if units[i].err = compilePatternInto(f, p); units[i].err == nil {
				units[i].pat = p
			}
		case filter.KindElemHide, filter.KindElemHideException:
			units[i].sel, units[i].err = css.Compile(f.Selector)
		}
	}
}
