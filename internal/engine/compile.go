package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"acceptableads/internal/css"
	"acceptableads/internal/filter"
)

// compiledUnit is the output of compiling one filter: a request pattern or
// an element hiding selector (whichever the filter kind calls for), or the
// compilation error. Compilation is pure — it touches only the filter —
// which is what lets it fan out across workers while index insertion stays
// sequential and deterministic.
type compiledUnit struct {
	pat *pattern
	sel *css.Selector
	err error
}

// compileChunk is how many filters one worker claims at a time: large
// enough that the atomic claim is noise, small enough to balance the tail.
const compileChunk = 256

// parallelThreshold is the filter count below which compileFilters stays
// serial; goroutine fan-out only pays for itself on list-scale inputs.
const parallelThreshold = 512

// compileFilters compiles every filter into a positional result slice.
// workers <= 0 means GOMAXPROCS. Results are positional, so the caller's
// sequential insertion (and therefore the built engine, its filter order,
// and which filter a match reports) is byte-for-byte identical regardless
// of worker count.
func compileFilters(filters []*filter.Filter, workers int) []compiledUnit {
	units := make([]compiledUnit, len(filters))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(filters) < parallelThreshold {
		compileRange(filters, units, 0, len(filters))
		return units
	}
	if max := (len(filters) + compileChunk - 1) / compileChunk; workers > max {
		workers = max
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(compileChunk)) - compileChunk
				if lo >= len(filters) {
					return
				}
				hi := lo + compileChunk
				if hi > len(filters) {
					hi = len(filters)
				}
				compileRange(filters, units, lo, hi)
			}
		}()
	}
	wg.Wait()
	return units
}

func compileRange(filters []*filter.Filter, units []compiledUnit, lo, hi int) {
	for i := lo; i < hi; i++ {
		f := filters[i]
		switch f.Kind {
		case filter.KindRequestBlock, filter.KindRequestException:
			units[i].pat, units[i].err = compilePattern(f)
		case filter.KindElemHide, filter.KindElemHideException:
			units[i].sel, units[i].err = css.Compile(f.Selector)
		}
	}
}
