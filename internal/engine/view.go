package engine

import (
	"fmt"
	"sort"

	"acceptableads/internal/htmldom"
)

// Profiles: named subsets of the loaded lists served from one compiled
// filter universe. Every compiled filter carries the membership bit of
// its source list; a profile is a bitmask over those bits and a View is
// the engine restricted to that mask. Matching through a view adds one
// AND per candidate inside the existing index loops — no per-profile
// recompile, no copied indexes — so a reload of the shared universe
// updates every profile atomically, and quarantining a filter disables
// it in every view at once.
//
// This is the paper's core experiment as a serving primitive: the
// EasyList-vs-EasyList+AA comparison (Walls et al., IMC'15 §4–5) becomes
// two views over one engine, and Diff answers "which exception unblocked
// this request" in a single index pass.

// DefaultProfile is the always-present profile spanning every loaded
// list; Engine.View(DefaultProfile) is equivalent to the flat engine.
const DefaultProfile = "full"

// addProfile registers a profile over already-loaded lists.
func (e *Engine) addProfile(name string, lists ...string) error {
	if name == "" {
		return fmt.Errorf("engine: profile name must be non-empty")
	}
	if len(lists) == 0 {
		return fmt.Errorf("engine: profile %q includes no lists", name)
	}
	if e.profiles == nil {
		e.profiles = make(map[string]uint64)
	}
	if _, dup := e.profiles[name]; dup {
		return fmt.Errorf("engine: profile %q already defined", name)
	}
	var mask uint64
	for _, l := range lists {
		bit, ok := e.listBits[l]
		if !ok {
			return fmt.Errorf("engine: profile %q: unknown list %q (loaded: %v)", name, l, e.lists)
		}
		mask |= bit
	}
	e.profiles[name] = mask
	return nil
}

// Profiles returns the names of the registered profiles, sorted. A built
// engine always includes DefaultProfile.
func (e *Engine) Profiles() []string {
	out := make([]string, 0, len(e.profiles))
	for name := range e.profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ProfileLists returns the list names a profile includes, in load order,
// or nil for an unknown profile.
func (e *Engine) ProfileLists(name string) []string {
	mask, ok := e.profiles[name]
	if !ok {
		return nil
	}
	var out []string
	for _, l := range e.lists {
		if e.listBits[l]&mask != 0 {
			out = append(out, l)
		}
	}
	return out
}

// View is an immutable, allocation-free restriction of an Engine to one
// profile's lists. It shares the engine's compiled indexes, attribution
// slots and quarantine state; only the membership mask differs. Views are
// cheap value-sized handles — create them per request or keep them
// around, both are fine.
type View struct {
	e    *Engine
	mask uint64
	name string
}

// View returns the named profile's view. The error names the valid
// profile set, so serving layers can surface it verbatim. On a built
// engine the view comes out of a per-profile cache — resolving a profile
// on the serving hot path is a map read, zero allocations.
func (e *Engine) View(name string) (*View, error) {
	if name == "" {
		name = DefaultProfile
	}
	if v, ok := e.views[name]; ok {
		return v, nil
	}
	mask, ok := e.profiles[name]
	if !ok {
		return nil, fmt.Errorf("unknown profile %q (valid: %v)", name, e.Profiles())
	}
	return &View{e: e, mask: mask, name: name}, nil
}

// Name returns the profile name the view serves.
func (v *View) Name() string { return v.name }

// Engine returns the shared underlying engine.
func (v *View) Engine() *Engine { return v.e }

// Lists returns the list names the view's profile includes, in load order.
func (v *View) Lists() []string { return v.e.ProfileLists(v.name) }

// NewSession creates a matching session restricted to the view's profile.
// rec may be nil for an unrecorded session.
func (v *View) NewSession(rec Recorder) *Session {
	return &Session{e: v.e, rec: rec, mask: v.mask}
}

// MatchRequest decides a request under the view's profile. Semantics and
// options are identical to Engine.MatchRequest; only the candidate set
// differs. The short-circuit path on a prepared request stays zero
// allocations — the view adds one AND per candidate.
func (v *View) MatchRequest(req *Request, opts ...MatchOption) Decision {
	return (&Session{e: v.e, rec: v.e.recorder, mask: v.mask}).MatchRequest(req, opts...)
}

// PagePermissions evaluates page-level allowances under the view's
// profile.
func (v *View) PagePermissions(pageURL, sitekey string) PageFlags {
	return (&Session{e: v.e, rec: v.e.recorder, mask: v.mask}).PagePermissions(pageURL, sitekey)
}

// HideElements applies element hiding under the view's profile.
func (v *View) HideElements(doc *htmldom.Node, pageURL, docHost string, opts ...MatchOption) []ElementMatch {
	return (&Session{e: v.e, rec: v.e.recorder, mask: v.mask}).HideElements(doc, pageURL, docHost, opts...)
}

// ElemHideCSS builds the injectable stylesheet under the view's profile.
func (v *View) ElemHideCSS(docHost string) string {
	return v.e.elemHideCSS(docHost, v.mask)
}

// DiffSide is one profile's outcome of a differential evaluation: the
// verdict plus the winning filter of each side, named with source list
// and line like an explain trail.
type DiffSide struct {
	Profile   string      `json:"profile"`
	Verdict   string      `json:"verdict"`
	Block     *TrailMatch `json:"block,omitempty"`
	Exception *TrailMatch `json:"exception,omitempty"`
}

// DiffResult reports one request evaluated under two profiles in a
// single pass — the paper's blocked-by-EasyList-but-unblocked-by-AA
// measurement as a first-class engine answer.
type DiffResult struct {
	A DiffSide `json:"a"`
	B DiffSide `json:"b"`
	// Flipped reports whether the two verdicts differ.
	Flipped bool `json:"flipped"`
	// Responsible names the filter that causes the verdicts to differ:
	// the exception that unblocks one side (the interesting case — an AA
	// exception flipping blocked to allowed), or the blocking filter
	// present on only one side. Nil when the verdicts agree.
	Responsible *TrailMatch `json:"responsible,omitempty"`
}

// diffRoles are the roles a differential evaluation resolves; DNT is a
// signalling side channel, not a verdict, and is skipped.
var diffRoles = [2]role{roleBlocking, roleException}

// diffState is the two-sided minimum-id resolution a Diff runs: one
// best-id slot per (side, role), improved as the shared index structures
// are scanned. Each side converges on exactly the filter its own
// MatchRequest (minimum insertion id) would report.
type diffState struct {
	masks [2]uint64
	res   [2][numRoles]*compiledRequest
	best  [2][numRoles]uint32
}

// scanDiff walks one id-sorted packed segment, improving both sides'
// best-id slots for role r. Gates run at most once per candidate even
// when both profiles include its list; the scan stops once no side can
// improve.
func (ds *diffState) scanDiff(seg []packedEntry, r role, req *Request) {
	for i := range seg {
		e := &seg[i]
		if e.id >= ds.best[0][r] && e.id >= ds.best[1][r] {
			break
		}
		w0 := e.listBit&ds.masks[0] != 0 && e.id < ds.best[0][r]
		w1 := e.listBit&ds.masks[1] != 0 && e.id < ds.best[1][r]
		if !w0 && !w1 {
			continue
		}
		if !gatePass(e.word, req) {
			continue
		}
		if !e.c.matches(req) {
			continue
		}
		if w0 {
			ds.best[0][r] = e.id
			ds.res[0][r] = e.c
		}
		if w1 {
			ds.best[1][r] = e.id
			ds.res[1][r] = e.c
		}
	}
}

// Diff evaluates req under two profile views in one pass over the shared
// index: each candidate's gates run at most once even when both profiles
// include its list. Both sides use instrumented-mode semantics (blocking
// and exception always resolved) with minimum-insertion-id resolution,
// so each side's verdict and winning filters are identical to what
// MatchRequest reports for that view. The effective filter of each side
// gets its attribution bump, exactly as two separate matches would.
func (e *Engine) Diff(req *Request, a, b *View) DiffResult {
	req.prepare()
	idx := e.index
	ds := diffState{masks: [2]uint64{a.mask, b.mask}}
	for s := range ds.best {
		for r := range ds.best[s] {
			ds.best[s][r] = ^uint32(0)
		}
	}
	scanBucketDiff := func(bk *bucket) {
		for _, r := range diffRoles {
			ds.scanDiff(bk.entries[bk.offs[r]:bk.offs[r+1]], r, req)
		}
	}
	for _, h := range req.kwh {
		if bk := idx.byHash[h]; bk != nil {
			scanBucketDiff(bk)
		}
	}
	if len(idx.byHost) > 0 {
		for _, key := range req.hostKeys {
			if bk := idx.byHost[key]; bk != nil {
				scanBucketDiff(bk)
			}
		}
	}
	for _, r := range diffRoles {
		ds.scanDiff(idx.slow[r], r, req)
	}

	out := DiffResult{
		A: diffSide(e, a.name, &ds.res[0]),
		B: diffSide(e, b.name, &ds.res[1]),
	}
	out.Flipped = out.A.Verdict != out.B.Verdict
	if out.Flipped {
		out.Responsible = responsibleFilter(&out.A, &out.B)
	}
	return out
}

// diffSide resolves one side's verdict from its first-match slots with
// instrumented-mode semantics and bumps the effective filter.
func diffSide(e *Engine, profile string, res *[numRoles]*compiledRequest) DiffSide {
	s := DiffSide{Profile: profile, Verdict: NoMatch.String()}
	if c := res[roleBlocking]; c != nil {
		s.Block = &TrailMatch{Filter: c.f.Raw, List: e.listOf(c.listBit), Line: int(c.line)}
	}
	if x := res[roleException]; x != nil {
		s.Exception = &TrailMatch{Filter: x.f.Raw, List: e.listOf(x.listBit), Line: int(x.line)}
		s.Verdict = Allowed.String()
		e.hit(res[roleException].id)
		return s
	}
	if res[roleBlocking] != nil {
		s.Verdict = Blocked.String()
		e.hit(res[roleBlocking].id)
	}
	return s
}

// responsibleFilter picks the filter explaining a verdict flip: the
// unblocking exception when one side allows, otherwise the one-sided
// blocking filter.
func responsibleFilter(a, b *DiffSide) *TrailMatch {
	allowed := Allowed.String()
	if a.Verdict == allowed && a.Exception != nil {
		return a.Exception
	}
	if b.Verdict == allowed && b.Exception != nil {
		return b.Exception
	}
	if a.Block != nil {
		return a.Block
	}
	return b.Block
}
