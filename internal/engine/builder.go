package engine

import (
	"fmt"

	"acceptableads/internal/filter"
)

// Builder accumulates filter lists and produces a frozen *Engine. The
// compiled indexes of a built engine are immutable, so any number of
// goroutines may match against it while a new engine is being built for
// the next list revision — the construction discipline behind the decision
// service's snapshot swaps: build, freeze, publish via an atomic pointer,
// let in-flight queries finish on the old snapshot.
//
// Pattern and selector compilation inside each Add fans out across
// GOMAXPROCS workers (see SetWorkers); insertion is sequential, so the
// built engine is identical regardless of worker count. A Builder is
// single-threaded; Build hands the engine off and the Builder must not be
// reused.
type Builder struct {
	e       *Engine
	workers int
}

// NewBuilder creates an empty engine builder.
func NewBuilder() *Builder {
	return &Builder{e: &Engine{
		index:      newUnifiedIndex(),
		elemHide:   newElemHideIndex(),
		listCounts: make(map[string]int),
	}}
}

// SetWorkers caps the compile worker count for subsequent Add calls.
// n <= 0 restores the default (GOMAXPROCS); n == 1 forces serial
// compilation — the baseline BenchmarkEngineBuildSerial measures.
func (b *Builder) SetWorkers(n int) *Builder {
	b.workers = n
	return b
}

// DisableFingerprints builds the engine without the packed pattern
// fingerprints, leaving that gate permanently open — the ablation switch
// behind BenchmarkAblationFingerprintOff. Call before any Add.
func (b *Builder) DisableFingerprints() *Builder {
	if b.e != nil {
		b.e.noFingerprint = true
	}
	return b
}

// DisableHostIndex builds the engine without the reversed-domain host
// index: '||'-anchored host filters stay in the keyword buckets — the
// ablation switch behind BenchmarkAblationDomainTrieOff. Call before any
// Add.
func (b *Builder) DisableHostIndex() *Builder {
	if b.e != nil {
		b.e.noHostIndex = true
	}
	return b
}

// Add compiles and indexes every active filter of l under the given list
// name. Calling Add after Build returns an error.
func (b *Builder) Add(name string, l *filter.List) error {
	if b.e == nil {
		return fmt.Errorf("engine: builder already built")
	}
	return b.e.addList(name, l, b.workers)
}

// Profile registers a named profile — a subset of the lists added so
// far — on the engine under construction. The built engine serves every
// profile from the one compiled filter universe via Engine.View; no
// per-profile recompile happens. Lists must already have been Added, so
// declare profiles after the Add calls. The "full" profile (every list)
// is registered implicitly by Build unless defined here explicitly.
func (b *Builder) Profile(name string, lists ...string) error {
	if b.e == nil {
		return fmt.Errorf("engine: builder already built")
	}
	return b.e.addProfile(name, lists...)
}

// Build freezes and returns the engine. The Builder is spent afterwards:
// further Add calls fail, which is what keeps the published engine
// immutable under concurrent readers. Build guarantees the
// DefaultProfile ("full") exists, spanning every added list.
func (b *Builder) Build() *Engine {
	e := b.e
	b.e = nil
	if e.profiles == nil {
		e.profiles = make(map[string]uint64, 1)
	}
	if _, ok := e.profiles[DefaultProfile]; !ok {
		e.profiles[DefaultProfile] = e.allMask
	}
	// One immutable View per profile, so resolving a profile at serve
	// time is a map read — part of the zero-allocation cache-hit path.
	e.views = make(map[string]*View, len(e.profiles))
	for name, mask := range e.profiles {
		e.views[name] = &View{e: e, mask: mask, name: name}
	}
	return e
}
