// Package engine implements Adblock Plus's matching semantics over parsed
// filters: request matching with keyword-indexed filter buckets, element
// hiding with an id/class-indexed selector set, exception precedence,
// whole-page $document/$elemhide allowances, and sitekey gating. It is the
// "instrumented Adblock Plus" of the paper's §5 — every filter activation
// can be recorded through a Recorder hook, including the "needless"
// whitelist activations the paper highlights.
package engine

import (
	"regexp"
	"strings"

	"acceptableads/internal/filter"
)

// pattern is a compiled request matching expression.
//
// Non-regex filters compile to segments: literal byte runs separated by '*'
// wildcards. The '^' separator placeholder stays embedded in segments and is
// interpreted during matching ("anything but a letter, a digit, or one of
// _ - . %", or the end of the URL).
// The five booleans trail the pointer-sized fields so the struct packs
// into 64 bytes — it is inlined by value into every compiledRequest, so
// its padding is multiplied by the corpus size.
type pattern struct {
	segments []string
	re       *regexp.Regexp // non-nil for /.../ regex filters

	// kwHash is the fnv64 of the filter's indexing keyword, valid when
	// hasKW; keyword-less filters (and regex filters, whose source text
	// is not literal) go to the always-probed slow bucket.
	kwHash uint64

	// hostKey is the pattern host under which the filter is filed in the
	// reversed-domain host index, or "" when it is not host-keyable (see
	// trieHostKey). Host-keyed filters skip the keyword buckets entirely.
	hostKey string

	anchorStart  bool
	anchorEnd    bool
	anchorDomain bool
	matchCase    bool
	hasKW        bool
}

// compilePattern builds a matcher for a request filter. Regex filters
// compile through the regexp package; everything else uses the segment
// matcher. An error is returned only for invalid regular expressions.
func compilePattern(f *filter.Filter) (*pattern, error) {
	p := new(pattern)
	if err := compilePatternInto(f, p); err != nil {
		return nil, err
	}
	return p, nil
}

// compilePatternInto compiles f into a caller-provided pattern slot —
// the arena form: compileFilters points each worker at a slab cell so
// every pattern of a list lands in one contiguous allocation.
func compilePatternInto(f *filter.Filter, p *pattern) error {
	*p = pattern{
		anchorStart:  f.AnchorStart,
		anchorEnd:    f.AnchorEnd,
		anchorDomain: f.AnchorDomain,
		matchCase:    f.MatchCase,
	}
	if f.IsRegex {
		// Slash-delimited filters are regexes by syntax, but most (like
		// EasyList's "/ad-frame/") contain no metacharacters at all; a
		// plain substring match is equivalent and orders of magnitude
		// cheaper. They still probe on every request (no keyword bucket:
		// their edge runs lack boundary characters), so the win is all in
		// the match itself. BenchmarkAblationLiteralRegex* measures it.
		if isLiteralRegex(f.Pattern) {
			text := f.Pattern
			if !f.MatchCase {
				text = strings.ToLower(text)
			}
			p.segments = []string{text}
			p.setKeyword(f)
			return nil
		}
		expr := f.Pattern
		if !f.MatchCase {
			expr = "(?i)" + expr
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			return err
		}
		p.re = re
		return nil
	}
	text := f.Pattern
	if !f.MatchCase {
		text = strings.ToLower(text)
	}
	for _, seg := range strings.Split(text, "*") {
		if seg != "" {
			p.segments = append(p.segments, seg)
		}
	}
	// "*foo" and "foo*" lose their empty outer segments; explicit
	// wildcards at the edges simply relax anchoring, which the segment
	// matcher already provides. A pattern of only wildcards matches
	// every URL.
	p.setKeyword(f)
	p.hostKey = trieHostKey(f)
	return nil
}

// setKeyword computes the indexing keyword hash at compile time, once per
// filter, so the index never re-derives it.
func (p *pattern) setKeyword(f *filter.Filter) {
	if p.re != nil {
		return
	}
	if kw := filterKeyword(anchoredText(p, f.Pattern)); kw != "" {
		p.kwHash = fnv64(kw)
		p.hasKW = true
	}
}

// isLiteralRegex reports whether a regex body is a plain literal: no
// metacharacters, so substring matching is equivalent. '^' is excluded —
// inside a slash-delimited filter it is a real regex anchor, not the
// Adblock separator class.
func isLiteralRegex(expr string) bool {
	for i := 0; i < len(expr); i++ {
		c := expr[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-', c == '_', c == '/', c == '%', c == ',', c == '=', c == ':', c == ';', c == '!', c == ' ':
		default:
			return false
		}
	}
	return true
}

// isSeparator implements the '^' placeholder character class.
func isSeparator(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return false
	case b == '_', b == '-', b == '.', b == '%':
		return false
	}
	return true
}

// match reports whether the pattern matches url. lower is the pre-lowered
// copy of url shared across all filters for one request, and bounds the
// request's memoized '||' candidate positions (nil to derive on the fly —
// boundary positions are byte offsets, identical in url and lower, so one
// slice serves both the case-sensitive and the case-folded subject).
func (p *pattern) match(url, lower string, bounds []int) bool {
	if p.re != nil {
		return p.re.MatchString(url)
	}
	subject := lower
	if p.matchCase {
		subject = url
	}
	return matchSegments(subject, p.segments, p.anchorStart, p.anchorEnd, p.anchorDomain, bounds)
}

// matchSegAt attempts to match one segment at position pos, returning the
// number of bytes consumed. A '^' consumes one separator byte, or zero
// bytes at the end of the URL (every trailing '^' may match the end).
func matchSegAt(url string, pos int, seg string) (int, bool) {
	i := pos
	for k := 0; k < len(seg); k++ {
		c := seg[k]
		if i >= len(url) {
			// URL exhausted: the rest of the segment must be '^'s,
			// each matching the end-of-address position.
			for ; k < len(seg); k++ {
				if seg[k] != '^' {
					return 0, false
				}
			}
			return i - pos, true
		}
		if c == '^' {
			if !isSeparator(url[i]) {
				return 0, false
			}
			i++
			continue
		}
		if url[i] != c {
			return 0, false
		}
		i++
	}
	return i - pos, true
}

// findSeg returns the first position >= from where seg matches, and the
// bytes consumed there, or (-1, 0). Segments without a '^' placeholder are
// plain substrings, so strings.Index does the scan; segments with a
// leading literal use it to skip between candidate positions instead of
// re-attempting a full match at every byte.
func findSeg(url string, from int, seg string) (int, int) {
	if from > len(url) {
		return -1, 0
	}
	caret := strings.IndexByte(seg, '^')
	if caret < 0 {
		i := strings.Index(url[from:], seg)
		if i < 0 {
			return -1, 0
		}
		return from + i, len(seg)
	}
	if caret > 0 {
		pre := seg[:caret]
		for pos := from; pos <= len(url)-len(pre); {
			i := strings.Index(url[pos:], pre)
			if i < 0 {
				return -1, 0
			}
			pos += i
			if n, ok := matchSegAt(url, pos, seg); ok {
				return pos, n
			}
			pos++
		}
		return -1, 0
	}
	for pos := from; pos <= len(url); pos++ {
		if n, ok := matchSegAt(url, pos, seg); ok {
			return pos, n
		}
	}
	return -1, 0
}

// appendDomainBoundaries appends to dst the candidate start positions for
// a '||'-anchored match: right after the scheme, or after any dot inside
// the hostname. The request memoizes the result once (Request.bounds) so
// every '||'-anchored candidate of a decision reuses one slice; before
// that, each candidate allocated its own — the single biggest per-decision
// allocator.
func appendDomainBoundaries(dst []int, url string) []int {
	hostStart := 0
	if i := strings.Index(url, "://"); i >= 0 {
		hostStart = i + 3
	} else if strings.HasPrefix(url, "//") {
		hostStart = 2
	}
	hostEnd := len(url)
	for i := hostStart; i < len(url); i++ {
		switch url[i] {
		case '/', '?', '#', ':':
			hostEnd = i
		}
		if hostEnd != len(url) {
			break
		}
	}
	dst = append(dst, hostStart)
	for i := hostStart; i < hostEnd; i++ {
		if url[i] == '.' {
			dst = append(dst, i+1)
		}
	}
	return dst
}

// domainBoundaries is the allocating convenience over
// appendDomainBoundaries, kept for tests and unmemoized callers.
func domainBoundaries(url string) []int {
	return appendDomainBoundaries(nil, url)
}

func matchSegments(url string, segs []string, anchorStart, anchorEnd, anchorDomain bool, bounds []int) bool {
	if len(segs) == 0 {
		return true
	}

	matchRest := func(pos int, rest []string) bool {
		for i, seg := range rest {
			last := i == len(rest)-1
			if last && anchorEnd {
				// The final segment must end exactly at the end
				// of the URL.
				for p := pos; p <= len(url); p++ {
					if n, ok := matchSegAt(url, p, seg); ok && p+n == len(url) {
						return true
					}
				}
				return false
			}
			p, n := findSeg(url, pos, seg)
			if p < 0 {
				return false
			}
			pos = p + n
		}
		return true
	}

	first := segs[0]
	rest := segs[1:]
	switch {
	case anchorStart:
		n, ok := matchSegAt(url, 0, first)
		if !ok {
			return false
		}
		if len(rest) == 0 {
			if anchorEnd {
				return n == len(url)
			}
			return true
		}
		return matchRest(n, rest)
	case anchorDomain:
		if bounds == nil {
			bounds = appendDomainBoundaries(make([]int, 0, 8), url)
		}
		for _, b := range bounds {
			n, ok := matchSegAt(url, b, first)
			if !ok {
				continue
			}
			if len(rest) == 0 {
				if anchorEnd {
					if b+n == len(url) {
						return true
					}
					continue
				}
				return true
			}
			if matchRest(b+n, rest) {
				return true
			}
		}
		return false
	default:
		if len(rest) == 0 && anchorEnd {
			return matchRest(0, segs)
		}
		pos := 0
		for {
			p, n := findSeg(url, pos, first)
			if p < 0 {
				return false
			}
			if len(rest) == 0 {
				return true
			}
			if matchRest(p+n, rest) {
				return true
			}
			pos = p + 1
		}
	}
}
