package engine

// Poison-pill containment. A filter whose evaluation panics (an
// adversarial regex, a compiler bug surfaced by hostile input — "Block
// the blocker"-style sites actively probe for these) must not crash-loop
// the serving process. Every compiled request filter carries an atomic
// containment state checked at the top of its candidate gate; the serving
// layer catches the panic, calls QuarantinePanicking to find and disable
// the culprit, and retries the match without it.
//
// States are monotone in practice: filters start filterOK and move to
// filterQuarantined (dead: matches reports false) when caught panicking.
// filterPoison is the chaos hook — a poisoned filter panics inside
// matches, standing in for a genuinely faulty filter in tests and fault
// drills.

const (
	filterOK          uint32 = 0
	filterQuarantined uint32 = 1
	filterPoison      uint32 = 2
)

// PoisonFilter arms every request filter whose raw text equals raw to
// panic when evaluated — the fault-injection hook behind the panic
// containment tests and chaos drills. It returns how many filters were
// armed. Only healthy (not already quarantined) filters are poisoned.
func (e *Engine) PoisonFilter(raw string) int {
	n := 0
	for r := role(0); r < numRoles; r++ {
		for _, c := range e.index.all[r] {
			if c.f.Raw == raw && c.state.CompareAndSwap(filterOK, filterPoison) {
				n++
			}
		}
	}
	return n
}

// QuarantinePanicking probes every request filter of the engine against
// req in isolation and quarantines each one whose evaluation panics,
// returning their identities. Call it after MatchRequest panicked for
// req: the panicking candidate is found by replaying the same gates one
// filter at a time under recover, then atomically disabled on every
// evaluation path (index bucket, slow list, linear scan share the same
// *compiledRequest). Concurrent matchers may still observe one panic in
// flight, but every evaluation after the store sees the filter as dead.
//
// An empty result means no currently-loaded request filter panics on req
// — either the culprit was already quarantined by a concurrent call, or
// the panic came from outside filter evaluation.
func (e *Engine) QuarantinePanicking(req *Request) []FilterStat {
	req.prepare()
	var out []FilterStat
	for r := role(0); r < numRoles; r++ {
		for _, c := range e.index.all[r] {
			if c.state.Load() == filterQuarantined {
				continue
			}
			if !panicsOn(c, req) {
				continue
			}
			// Disable from whichever armed state we saw; losing the CAS
			// race to a concurrent quarantiner is fine — the filter is
			// dead either way, and only the winner reports it.
			if c.state.CompareAndSwap(filterOK, filterQuarantined) ||
				c.state.CompareAndSwap(filterPoison, filterQuarantined) {
				e.quarCount.Add(1)
				out = append(out, FilterStat{
					Filter: c.f.Raw,
					List:   e.listOf(c.listBit),
					Line:   int(c.line),
					Hits:   e.hits[c.id].Load(),
				})
			}
		}
	}
	return out
}

// panicsOn reports whether evaluating c against req panics.
func panicsOn(c *compiledRequest, req *Request) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	c.matches(req)
	return false
}

// Quarantined returns the identity of every quarantined request filter,
// in load order.
func (e *Engine) Quarantined() []FilterStat {
	var out []FilterStat
	for r := role(0); r < numRoles; r++ {
		for _, c := range e.index.all[r] {
			if c.state.Load() == filterQuarantined {
				out = append(out, FilterStat{
					Filter: c.f.Raw,
					List:   e.listOf(c.listBit),
					Line:   int(c.line),
					Hits:   e.hits[c.id].Load(),
				})
			}
		}
	}
	return out
}

// QuarantinedCount returns how many request filters have been quarantined
// on this engine.
func (e *Engine) QuarantinedCount() int64 { return e.quarCount.Load() }
