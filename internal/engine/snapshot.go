package engine

import (
	"fmt"
	"regexp"
	"sync/atomic"

	"acceptableads/internal/css"
	"acceptableads/internal/filter"
	"acceptableads/internal/strtab"
)

// Arenas is the flat, relocatable form of a built engine: every scalar
// per-filter field lives in a dense column indexed by the filter's id,
// and variable-length per-filter data (pattern segments, $domain
// entries, sitekeys) lives in shared flat arrays windowed by offset
// columns. It is exactly what the snapbin codec serializes — bulk slab
// writes on encode, bulk slab reads on decode — and FromArenas rebuilds
// a serving engine from it without re-parsing list text or re-deriving
// any compile artifact except true regular expressions (the only form
// whose compiled state is not plain data): CSS selectors travel as a
// flat css.Arena and the frozen probe-index layout travels as the
// Bkt*/Idx*/Slow* columns below.
type Arenas struct {
	Lists    []ArenaList
	Profiles []ArenaProfile
	// NoFingerprint / NoHostIndex reproduce the builder's ablation
	// switches, so a decoded engine gates identically.
	NoFingerprint bool
	NoHostIndex   bool

	// Per-filter columns, each len == number of filters. String columns
	// whose entries are copied out into the rebuilt filters are strtab
	// columns (two zero-copy views when decoded instead of a []string
	// header slab); Segments and Sitekeys below stay []string because
	// FromArenas windows them in place.
	Raw      strtab.Col
	Kind     []uint8
	Flags    []uint8 // arenaIsRegex ... arenaHasRe bits
	TypeMask []uint32
	Tri      []uint8 // ThirdParty in bits 0-1, Collapse in bits 2-3
	Line     []int32
	ListIdx  []uint8
	Pattern  strtab.Col
	Selector strtab.Col
	HostKey  strtab.Col
	KwHash   []uint64
	GateWord []uint64

	// Variable-length per-filter data, flattened: filter i owns
	// Segments[SegOff[i]:SegOff[i+1]], Domains/DomNeg[DomOff[i]:...],
	// Sitekeys[KeyOff[i]:...]. Offset columns have one extra entry.
	SegOff   []uint32
	Segments []string
	DomOff   []uint32
	Domains  strtab.Col
	DomNeg   []bool
	KeyOff   []uint32
	Sitekeys []string

	// Css carries every element-hiding selector's compiled form, in
	// filter-id order over the hiding/exception filters, so decode is a
	// slab build instead of a per-selector parse.
	Css css.Arena

	// Frozen request-index layout, captured after freeze() so decode can
	// install the probe structures directly instead of re-deriving them.
	// Bucket b is BktKind[b] (0 = keyword-hash, keyed by BktHash[b];
	// 1 = reversed-domain host, keyed by BktHost[b]) and owns the
	// numRoles+1 relative role offsets BktOffs[b*(numRoles+1):...] over
	// its window of IdxIds. IdxIds/SlowIds carry filter ids in slab
	// order; each (bucket, role) segment is strictly id-ascending, the
	// invariant the probe early-exit relies on.
	BktKind  []uint8
	BktHash  []uint64
	BktHost  strtab.Col
	BktOffs  []uint32
	IdxIds   []uint32
	SlowOffs []uint32 // numRoles+1 offsets into SlowIds
	SlowIds  []uint32
}

// ArenaList is one loaded list's identity and compiled-filter count (a
// decode-time consistency check against the ListIdx column).
type ArenaList struct {
	Name    string
	Filters int
}

// ArenaProfile is one registered profile and its list-membership mask.
type ArenaProfile struct {
	Name string
	Mask uint64
}

// Per-filter flag bits in Arenas.Flags.
const (
	arenaIsRegex uint8 = 1 << iota
	arenaAnchorDomain
	arenaAnchorStart
	arenaAnchorEnd
	arenaMatchCase
	arenaDoNotTrack
	arenaHasKW
	arenaHasRe // pattern carries a compiled (non-literal) regexp
)

// ToArenas flattens the built engine into its arena form. The engine is
// not mutated; the arenas share its strings.
func (e *Engine) ToArenas() *Arenas {
	refs := e.filterRefs()
	n := len(refs)
	// Every request filter sits in exactly one frozen index cell (a bucket
	// segment or the slow path) with its gate word, so the frozen
	// structures themselves are the authoritative (pattern, word) source —
	// valid for built and decoded engines alike.
	pats := make([]*pattern, n)
	words := make([]uint64, n)
	for i := range e.index.entries {
		pe := &e.index.entries[i]
		pats[pe.id], words[pe.id] = &pe.c.pat, pe.word
	}
	for r := role(0); r < numRoles; r++ {
		for i := range e.index.slow[r] {
			pe := &e.index.slow[r][i]
			pats[pe.id], words[pe.id] = &pe.c.pat, pe.word
		}
	}
	a := &Arenas{
		NoFingerprint: e.noFingerprint,
		NoHostIndex:   e.noHostIndex,
		Kind:          make([]uint8, n),
		Flags:         make([]uint8, n),
		TypeMask:      make([]uint32, n),
		Tri:           make([]uint8, n),
		Line:          make([]int32, n),
		ListIdx:       make([]uint8, n),
		KwHash:        make([]uint64, n),
		GateWord:      make([]uint64, n),
		SegOff:        make([]uint32, n+1),
		DomOff:        make([]uint32, n+1),
		KeyOff:        make([]uint32, n+1),
	}
	a.Raw.Grow(n, 0)
	a.Pattern.Grow(n, 0)
	a.Selector.Grow(n, 0)
	a.HostKey.Grow(n, 0)
	for _, name := range e.lists {
		a.Lists = append(a.Lists, ArenaList{Name: name, Filters: e.listCounts[name]})
	}
	for _, name := range e.Profiles() {
		a.Profiles = append(a.Profiles, ArenaProfile{Name: name, Mask: e.profiles[name]})
	}
	for id := 0; id < n; id++ {
		ref := &refs[id]
		f := ref.f
		a.Raw.Append(f.Raw)
		a.Kind[id] = uint8(f.Kind)
		a.TypeMask[id] = uint32(f.TypeMask)
		a.Tri[id] = uint8(f.ThirdParty) | uint8(f.Collapse)<<2
		a.Line[id] = ref.line
		a.ListIdx[id] = ref.listIdx
		a.Pattern.Append(f.Pattern)
		a.Selector.Append(f.Selector)
		var fl uint8
		if f.IsRegex {
			fl |= arenaIsRegex
		}
		if f.AnchorDomain {
			fl |= arenaAnchorDomain
		}
		if f.AnchorStart {
			fl |= arenaAnchorStart
		}
		if f.AnchorEnd {
			fl |= arenaAnchorEnd
		}
		if f.MatchCase {
			fl |= arenaMatchCase
		}
		if f.DoNotTrack {
			fl |= arenaDoNotTrack
		}
		a.SegOff[id] = uint32(len(a.Segments))
		if p := pats[id]; p != nil {
			a.Segments = append(a.Segments, p.segments...)
			a.HostKey.Append(p.hostKey)
			a.KwHash[id] = p.kwHash
			a.GateWord[id] = words[id]
			if p.hasKW {
				fl |= arenaHasKW
			}
			if p.re != nil {
				fl |= arenaHasRe
			}
		} else {
			a.HostKey.Append("")
		}
		a.Flags[id] = fl
		a.DomOff[id] = uint32(a.Domains.Len())
		for _, d := range f.Domains {
			a.Domains.Append(d.Domain)
			a.DomNeg = append(a.DomNeg, d.Negated)
		}
		a.KeyOff[id] = uint32(len(a.Sitekeys))
		a.Sitekeys = append(a.Sitekeys, f.Sitekeys...)
	}
	a.SegOff[n] = uint32(len(a.Segments))
	a.DomOff[n] = uint32(a.Domains.Len())
	a.KeyOff[n] = uint32(len(a.Sitekeys))

	// Compiled selectors, in filter-id order (the order FromArenas
	// consumes them in).
	selOf := make([]*css.Selector, n)
	for _, c := range e.elemHide.all {
		selOf[c.id] = c.sel
	}
	for _, cs := range e.elemHide.exceptions {
		for _, c := range cs {
			selOf[c.id] = c.sel
		}
	}
	for id := 0; id < n; id++ {
		if selOf[id] != nil {
			a.Css.Append(selOf[id])
		}
	}

	// Frozen index layout: bucket keys recovered from the probe maps,
	// entries dumped in slab order.
	idx := e.index
	bktOf := make(map[*bucket]int32, len(idx.buckets))
	for i := range idx.buckets {
		bktOf[&idx.buckets[i]] = int32(i)
	}
	nb := len(idx.buckets)
	a.BktKind = make([]uint8, nb)
	a.BktHash = make([]uint64, nb)
	hosts := make([]string, nb)
	a.BktOffs = make([]uint32, 0, nb*int(numRoles+1))
	a.IdxIds = make([]uint32, 0, len(idx.entries))
	for h, b := range idx.byHash {
		a.BktHash[bktOf[b]] = h
	}
	for k, b := range idx.byHost {
		i := bktOf[b]
		a.BktKind[i] = 1
		hosts[i] = k
	}
	a.BktHost.Grow(nb, 0)
	for _, h := range hosts {
		a.BktHost.Append(h)
	}
	for i := range idx.buckets {
		b := &idx.buckets[i]
		a.BktOffs = append(a.BktOffs, b.offs[:]...)
		for j := range b.entries {
			a.IdxIds = append(a.IdxIds, b.entries[j].id)
		}
	}
	a.SlowOffs = make([]uint32, numRoles+1)
	for r := role(0); r < numRoles; r++ {
		a.SlowOffs[r] = uint32(len(a.SlowIds))
		for j := range idx.slow[r] {
			a.SlowIds = append(a.SlowIds, idx.slow[r][j].id)
		}
	}
	a.SlowOffs[numRoles] = uint32(len(a.SlowIds))
	return a
}

// validate rejects any arena set that could not have come from ToArenas:
// mismatched column lengths, non-monotonic offsets, out-of-range list
// references, unknown kinds. FromArenas runs it before touching a single
// filter, so a corrupt (but checksum-passing) snapshot yields an error,
// never a panic or a half-built engine.
func (a *Arenas) validate() error {
	for _, c := range []struct {
		name string
		col  *strtab.Col
	}{
		{"raw", &a.Raw}, {"pattern", &a.Pattern}, {"selector", &a.Selector},
		{"hostkey", &a.HostKey}, {"domains", &a.Domains}, {"bkthost", &a.BktHost},
	} {
		if err := c.col.Validate(); err != nil {
			return fmt.Errorf("engine: arenas: %s column: %w", c.name, err)
		}
	}
	n := a.Raw.Len()
	cols := []struct {
		name string
		got  int
	}{
		{"kind", len(a.Kind)}, {"flags", len(a.Flags)}, {"typemask", len(a.TypeMask)},
		{"tri", len(a.Tri)}, {"line", len(a.Line)}, {"listidx", len(a.ListIdx)},
		{"pattern", a.Pattern.Len()}, {"selector", a.Selector.Len()}, {"hostkey", a.HostKey.Len()},
		{"kwhash", len(a.KwHash)}, {"gateword", len(a.GateWord)},
	}
	for _, c := range cols {
		if c.got != n {
			return fmt.Errorf("engine: arenas: column %s has %d entries, want %d", c.name, c.got, n)
		}
	}
	offs := []struct {
		name string
		off  []uint32
		flat int
	}{
		{"segments", a.SegOff, len(a.Segments)},
		{"domains", a.DomOff, a.Domains.Len()},
		{"sitekeys", a.KeyOff, len(a.Sitekeys)},
	}
	for _, o := range offs {
		if len(o.off) != n+1 {
			return fmt.Errorf("engine: arenas: %s offsets have %d entries, want %d", o.name, len(o.off), n+1)
		}
		if n >= 0 && (len(o.off) == 0 || o.off[0] != 0 || int(o.off[n]) != o.flat) {
			return fmt.Errorf("engine: arenas: %s offsets span [%v..%v], want [0..%d]", o.name, o.off[0], o.off[n], o.flat)
		}
		for i := 0; i < n; i++ {
			if o.off[i] > o.off[i+1] {
				return fmt.Errorf("engine: arenas: %s offsets decrease at filter %d", o.name, i)
			}
		}
	}
	if len(a.DomNeg) != a.Domains.Len() {
		return fmt.Errorf("engine: arenas: %d domain negation bits for %d domains", len(a.DomNeg), a.Domains.Len())
	}
	if len(a.Lists) > maxLists {
		return fmt.Errorf("engine: arenas: %d lists (max %d)", len(a.Lists), maxLists)
	}
	listSeen := make(map[string]bool, len(a.Lists))
	for _, l := range a.Lists {
		if l.Name == "" || listSeen[l.Name] {
			return fmt.Errorf("engine: arenas: empty or duplicate list name %q", l.Name)
		}
		listSeen[l.Name] = true
	}
	var allMask uint64
	if len(a.Lists) > 0 {
		allMask = uint64(1)<<uint(len(a.Lists)) - 1
	}
	profSeen := make(map[string]bool, len(a.Profiles))
	for _, p := range a.Profiles {
		if p.Name == "" || profSeen[p.Name] {
			return fmt.Errorf("engine: arenas: empty or duplicate profile name %q", p.Name)
		}
		profSeen[p.Name] = true
		if p.Mask&^allMask != 0 {
			return fmt.Errorf("engine: arenas: profile %q mask %#x references unknown lists", p.Name, p.Mask)
		}
	}
	counts := make([]int, len(a.Lists))
	nElem := 0
	for id := 0; id < n; id++ {
		switch filter.Kind(a.Kind[id]) {
		case filter.KindElemHide, filter.KindElemHideException:
			nElem++
		case filter.KindRequestBlock, filter.KindRequestException:
		default:
			return fmt.Errorf("engine: arenas: filter %d has non-compilable kind %d", id, a.Kind[id])
		}
		if int(a.ListIdx[id]) >= len(a.Lists) {
			return fmt.Errorf("engine: arenas: filter %d references list %d of %d", id, a.ListIdx[id], len(a.Lists))
		}
		counts[a.ListIdx[id]]++
		if a.Tri[id]&3 > uint8(filter.No) || a.Tri[id]>>2&3 > uint8(filter.No) {
			return fmt.Errorf("engine: arenas: filter %d has invalid tri-state byte %#x", id, a.Tri[id])
		}
	}
	for i, l := range a.Lists {
		if counts[i] != l.Filters {
			return fmt.Errorf("engine: arenas: list %q declares %d filters, columns carry %d", l.Name, l.Filters, counts[i])
		}
	}
	if a.Css.Raw.Len() != nElem {
		return fmt.Errorf("engine: arenas: selector arena carries %d selectors for %d hiding filters", a.Css.Raw.Len(), nElem)
	}
	nb := len(a.BktKind)
	if len(a.BktHash) != nb || a.BktHost.Len() != nb {
		return fmt.Errorf("engine: arenas: bucket key columns disagree: %d kinds, %d hashes, %d hosts",
			nb, len(a.BktHash), a.BktHost.Len())
	}
	if len(a.BktOffs) != nb*int(numRoles+1) {
		return fmt.Errorf("engine: arenas: %d bucket offsets for %d buckets, want %d", len(a.BktOffs), nb, nb*int(numRoles+1))
	}
	if len(a.SlowOffs) != int(numRoles)+1 {
		return fmt.Errorf("engine: arenas: %d slow offsets, want %d", len(a.SlowOffs), numRoles+1)
	}
	return nil
}

// installLayout installs the frozen probe structures recorded in the
// arenas, replacing the freeze() re-derivation on the decode path: every
// bucket header, role offset, and slab entry is placed exactly where the
// encoding engine had it, so the decoded index is the original index by
// construction. The layout is fully cross-checked against the filter
// columns first — every id must name a request filter, appear exactly
// once across buckets and the slow path, and each (bucket, role) segment
// must be strictly id-ascending (the probe early-exit invariant) — so a
// corrupt layout yields an error, never a misbehaving index.
func (idx *unifiedIndex) installLayout(a *Arenas, reqs []compiledRequest, reqIdxOf []int32) error {
	nb := len(a.BktKind)
	nReq := len(reqs)
	if len(a.IdxIds)+len(a.SlowIds) != nReq {
		return fmt.Errorf("engine: arenas: index layout files %d filters, corpus has %d request filters",
			len(a.IdxIds)+len(a.SlowIds), nReq)
	}
	seen := make([]bool, len(reqIdxOf))
	fill := func(dst []packedEntry, ids []uint32) error {
		prev := int64(-1)
		for i, id := range ids {
			if int(id) >= len(reqIdxOf) || reqIdxOf[id] < 0 {
				return fmt.Errorf("engine: arenas: index entry references filter %d, not a request filter", id)
			}
			if int64(id) <= prev {
				return fmt.Errorf("engine: arenas: index segment ids not ascending at filter %d", id)
			}
			prev = int64(id)
			if seen[id] {
				return fmt.Errorf("engine: arenas: filter %d filed twice in index layout", id)
			}
			seen[id] = true
			// listBit comes from the arena column, not the request cell:
			// the ids stream in bucket order, so the column read stays in
			// cache while a c.listBit load would fault a cold cache line
			// per entry.
			dst[i] = packedEntry{word: a.GateWord[id],
				listBit: uint64(1) << uint(a.ListIdx[id]), c: &reqs[reqIdxOf[id]], id: id}
		}
		return nil
	}
	nHost := 0
	for _, k := range a.BktKind {
		if k == 1 {
			nHost++
		}
	}
	idx.entries = make([]packedEntry, len(a.IdxIds))
	idx.buckets = make([]bucket, nb)
	idx.byHash = make(map[uint64]*bucket, nb-nHost)
	idx.byHost = make(map[string]*bucket, nHost)
	base := uint32(0)
	for s := 0; s < nb; s++ {
		offs := a.BktOffs[s*int(numRoles+1) : (s+1)*int(numRoles+1)]
		if offs[0] != 0 {
			return fmt.Errorf("engine: arenas: bucket %d role offsets start at %d", s, offs[0])
		}
		for r := role(0); r < numRoles; r++ {
			if offs[r] > offs[r+1] {
				return fmt.Errorf("engine: arenas: bucket %d role offsets decrease", s)
			}
		}
		width := offs[numRoles]
		if int(base)+int(width) > len(idx.entries) {
			return fmt.Errorf("engine: arenas: bucket windows overrun %d index entries", len(idx.entries))
		}
		b := &idx.buckets[s]
		copy(b.offs[:], offs)
		end := base + width
		b.entries = idx.entries[base:end:end]
		for r := role(0); r < numRoles; r++ {
			if err := fill(b.entries[offs[r]:offs[r+1]], a.IdxIds[base+offs[r]:base+offs[r+1]]); err != nil {
				return err
			}
		}
		base = end
		switch a.BktKind[s] {
		case 0:
			if _, dup := idx.byHash[a.BktHash[s]]; dup {
				return fmt.Errorf("engine: arenas: duplicate keyword bucket %#x", a.BktHash[s])
			}
			idx.byHash[a.BktHash[s]] = b
		case 1:
			host := a.BktHost.At(s)
			if host == "" {
				return fmt.Errorf("engine: arenas: host bucket %d has empty key", s)
			}
			if _, dup := idx.byHost[host]; dup {
				return fmt.Errorf("engine: arenas: duplicate host bucket %q", host)
			}
			idx.byHost[host] = b
		default:
			return fmt.Errorf("engine: arenas: bucket %d has unknown kind %d", s, a.BktKind[s])
		}
	}
	if int(base) != len(idx.entries) {
		return fmt.Errorf("engine: arenas: bucket windows cover %d of %d index entries", base, len(idx.entries))
	}
	if a.SlowOffs[0] != 0 || int(a.SlowOffs[numRoles]) != len(a.SlowIds) {
		return fmt.Errorf("engine: arenas: slow offsets span [%d..%d], want [0..%d]",
			a.SlowOffs[0], a.SlowOffs[numRoles], len(a.SlowIds))
	}
	slowSlab := make([]packedEntry, len(a.SlowIds))
	for r := role(0); r < numRoles; r++ {
		lo, hi := a.SlowOffs[r], a.SlowOffs[r+1]
		if lo > hi {
			return fmt.Errorf("engine: arenas: slow offsets decrease at role %d", r)
		}
		if hi > lo {
			seg := slowSlab[lo:hi:hi]
			if err := fill(seg, a.SlowIds[lo:hi]); err != nil {
				return err
			}
			idx.slow[r] = seg
		}
	}
	return nil
}

// FromArenas rebuilds a serving engine from its arena form. All compiled
// state except regular expressions is adopted verbatim — segments,
// keyword hashes, gate words, host keys, slab-decoded CSS selectors, and
// the frozen index layout itself — so the resulting index is the one the
// original builder produced, verdicts and winning identities included,
// without re-parsing list text or re-deriving any probe structure.
//
// The input is fully validated first: a corrupt arena set returns an
// error and never a partially initialized engine.
func FromArenas(a *Arenas) (*Engine, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	n := a.Raw.Len()
	e := &Engine{
		index:         newUnifiedIndex(),
		elemHide:      newElemHideIndex(),
		listCounts:    make(map[string]int, len(a.Lists)),
		listBits:      make(map[string]uint64, len(a.Lists)),
		noFingerprint: a.NoFingerprint,
		noHostIndex:   a.NoHostIndex,
	}
	for i, l := range a.Lists {
		bit := uint64(1) << uint(i)
		e.listBits[l.Name] = bit
		e.allMask |= bit
		e.lists = append(e.lists, l.Name)
		e.listCounts[l.Name] = l.Filters
	}
	// Bulk arena allocation: one slab per compiled form, sized by one
	// counting pass — the "no per-filter allocation" half of the codec's
	// contract.
	nReq := 0
	var perRole [numRoles]int
	for id := 0; id < n; id++ {
		k := filter.Kind(a.Kind[id])
		if k == filter.KindRequestBlock || k == filter.KindRequestException {
			nReq++
			dnt := a.Flags[id]&arenaDoNotTrack != 0
			switch {
			case dnt && k == filter.KindRequestBlock:
				perRole[roleDNT]++
			case dnt:
				perRole[roleDNTException]++
			case k == filter.KindRequestBlock:
				perRole[roleBlocking]++
			default:
				perRole[roleException]++
			}
		}
	}
	// The construction log (adds) is skipped entirely: the frozen layout
	// arrives serialized, so decode never re-freezes, and ToArenas reads
	// the frozen structures. Only the per-role linear views are filed.
	e.index.grow(0, &perRole)
	sels, err := a.Css.Build()
	if err != nil {
		return nil, err
	}
	filters := make([]filter.Filter, n)
	doms := make([]filter.DomainSpec, a.Domains.Len())
	for i := range doms {
		doms[i] = filter.DomainSpec{Domain: a.Domains.At(i), Negated: a.DomNeg[i]}
	}
	reqs := make([]compiledRequest, nReq)
	elems := make([]compiledElem, n-nReq)
	// reqIdxOf maps filter id → slot in reqs (-1 for hiding filters): a
	// pointer-free scratch table, so filling it costs no write barriers
	// and the GC never scans it.
	reqIdxOf := make([]int32, n)
	// refs are not materialized here: the decoded Line/ListIdx columns
	// alias the snapshot buffer (pinned by the filter strings anyway), so
	// the cold stats/re-encode paths can build them on first use.
	e.lazyRefFilters, e.lazyRefLine, e.lazyRefListIdx = filters, a.Line, a.ListIdx
	iReq, iElem := 0, 0
	for id := 0; id < n; id++ {
		f := &filters[id]
		fl := a.Flags[id]
		f.Raw = a.Raw.At(id)
		f.Kind = filter.Kind(a.Kind[id])
		f.Pattern = a.Pattern.At(id)
		f.IsRegex = fl&arenaIsRegex != 0
		f.AnchorDomain = fl&arenaAnchorDomain != 0
		f.AnchorStart = fl&arenaAnchorStart != 0
		f.AnchorEnd = fl&arenaAnchorEnd != 0
		f.MatchCase = fl&arenaMatchCase != 0
		f.DoNotTrack = fl&arenaDoNotTrack != 0
		f.TypeMask = filter.ContentType(a.TypeMask[id])
		f.ThirdParty = filter.TriState(a.Tri[id] & 3)
		f.Collapse = filter.TriState(a.Tri[id] >> 2 & 3)
		f.Domains = doms[a.DomOff[id]:a.DomOff[id+1]]
		f.Sitekeys = a.Sitekeys[a.KeyOff[id]:a.KeyOff[id+1]]
		f.Selector = a.Selector.At(id)
		bit := uint64(1) << uint(a.ListIdx[id])
		line := a.Line[id]
		switch f.Kind {
		case filter.KindRequestBlock, filter.KindRequestException:
			c := &reqs[iReq]
			reqIdxOf[id] = int32(iReq)
			iReq++
			p := &c.pat
			p.segments = a.Segments[a.SegOff[id]:a.SegOff[id+1]]
			p.anchorStart, p.anchorEnd = f.AnchorStart, f.AnchorEnd
			p.anchorDomain, p.matchCase = f.AnchorDomain, f.MatchCase
			p.kwHash = a.KwHash[id]
			p.hasKW = fl&arenaHasKW != 0
			p.hostKey = a.HostKey.At(id)
			if fl&arenaHasRe != 0 {
				expr := f.Pattern
				if !f.MatchCase {
					expr = "(?i)" + expr
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					return nil, fmt.Errorf("engine: arenas: filter %d regex %q: %w", id, f.Pattern, err)
				}
				p.re = re
			}
			c.f, c.id, c.line, c.listBit = f, uint32(id), line, bit
			r := requestRole(f)
			e.index.all[r] = append(e.index.all[r], c)
		default:
			reqIdxOf[id] = -1
			c := &elems[iElem]
			c.f, c.sel, c.id, c.line, c.listBit = f, &sels[iElem], uint32(id), line, bit
			iElem++
		}
	}
	e.elemHide.install(elems)
	e.numFilters = n
	if err := e.index.installLayout(a, reqs, reqIdxOf); err != nil {
		return nil, err
	}
	e.hits = make([]atomic.Int64, n)
	e.profiles = make(map[string]uint64, len(a.Profiles)+1)
	for _, p := range a.Profiles {
		e.profiles[p.Name] = p.Mask
	}
	if _, ok := e.profiles[DefaultProfile]; !ok {
		e.profiles[DefaultProfile] = e.allMask
	}
	e.views = make(map[string]*View, len(e.profiles))
	for name, mask := range e.profiles {
		e.views[name] = &View{e: e, mask: mask, name: name}
	}
	return e, nil
}
