package engine

import (
	"sort"
	"strings"
)

// ElemHideCSS builds the user stylesheet Adblock Plus would inject for a
// page on docHost: every applicable hiding selector, minus those cancelled
// by an element exception on that domain, rendered as
// "selector, selector { display: none !important; }" groups.
//
// This is how element hiding actually ships in the extension — filters
// become one big stylesheet, not per-node DOM surgery — and it is the
// engine API a browser-integration consumer would use.
func (e *Engine) ElemHideCSS(docHost string) string {
	return e.elemHideCSS(docHost, e.allMask)
}

// elemHideCSS is ElemHideCSS restricted to a profile mask; View.ElemHideCSS
// goes through here.
func (e *Engine) elemHideCSS(docHost string, mask uint64) string {
	var selectors []string
	for _, c := range e.elemHide.all {
		if c.listBit&mask == 0 {
			continue
		}
		if !c.f.AppliesToDomain(docHost) {
			continue
		}
		if e.findElemException(c.f.Selector, docHost, mask) != nil {
			continue
		}
		selectors = append(selectors, c.f.Selector)
	}
	if len(selectors) == 0 {
		return ""
	}
	sort.Strings(selectors)
	selectors = dedupeSorted(selectors)

	// Group selectors to keep rule counts low, as the extension does.
	const perRule = 100
	var b strings.Builder
	for i := 0; i < len(selectors); i += perRule {
		j := i + perRule
		if j > len(selectors) {
			j = len(selectors)
		}
		b.WriteString(strings.Join(selectors[i:j], ", "))
		b.WriteString(" { display: none !important; }\n")
	}
	return b.String()
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
