package engine

import (
	"strings"
	"testing"

	"acceptableads/internal/filter"
	"acceptableads/internal/htmldom"
	"acceptableads/internal/xrand"
)

func mustProfile(t *testing.T, e *Engine, name string, lists ...string) *View {
	t.Helper()
	if err := e.addProfile(name, lists...); err != nil {
		t.Fatal(err)
	}
	v, err := e.View(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestProfileRegistration(t *testing.T) {
	e := mustEngine(t,
		listOf("easylist", "||a.example^"),
		listOf("exceptionrules", "@@||a.example/ok/"),
	)
	if err := e.addProfile("easylist", "easylist"); err != nil {
		t.Fatal(err)
	}
	if err := e.addProfile("easylist", "easylist"); err == nil {
		t.Error("duplicate profile accepted")
	}
	if err := e.addProfile("bad", "nosuchlist"); err == nil {
		t.Error("unknown list accepted")
	}
	if err := e.addProfile("", "easylist"); err == nil {
		t.Error("empty profile name accepted")
	}
	if err := e.addProfile("empty"); err == nil {
		t.Error("empty list set accepted")
	}
	if got := e.Profiles(); len(got) != 2 || got[0] != "easylist" || got[1] != "full" {
		t.Errorf("Profiles() = %v, want [easylist full]", got)
	}
	if got := e.ProfileLists("full"); len(got) != 2 || got[0] != "easylist" || got[1] != "exceptionrules" {
		t.Errorf("ProfileLists(full) = %v", got)
	}
	if _, err := e.View("nope"); err == nil || !strings.Contains(err.Error(), "easylist") {
		t.Errorf("View(nope) error %v should name the valid profiles", err)
	}
	// The empty name resolves to the default (full) profile.
	v, err := e.View("")
	if err != nil || v.Name() != DefaultProfile {
		t.Errorf("View(\"\") = %v, %v; want the %s profile", v, err, DefaultProfile)
	}
}

func TestDuplicateListRejected(t *testing.T) {
	b := NewBuilder()
	if err := b.Add("l", filter.ParseListString("l", "||a.example^")); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("l", filter.ParseListString("l", "||b.example^")); err == nil {
		t.Error("duplicate list name accepted")
	}
}

// TestViewDifferentialVsFreshEngine is the profile-correctness anchor:
// matching through View("easylist") of a multi-list engine must be
// indistinguishable — verdicts, winning filters, DNT, page permissions,
// element hiding — from a fresh engine built from EasyList alone, over
// the exotic corpus ($match-case, regex, keyword-less, sitekey,
// $document/$elemhide, exceptions) in every evaluation mode.
func TestViewDifferentialVsFreshEngine(t *testing.T) {
	rng := xrand.New(20260808)
	var elLines []string
	for i := 0; i < 300; i++ {
		line := genExoticLine(rng)
		if rng.Intn(5) == 0 {
			line = "@@" + line
		}
		elLines = append(elLines, line)
	}
	// Page-permission and element-hiding corners the generator does not
	// reach: sitekey grants, $document/$elemhide exceptions, hides and
	// hide exceptions.
	elLines = append(elLines,
		"@@||sk.example^$document,sitekey=c2l0ZWtleQ",
		"@@||docallow.example^$document",
		"@@||ehoff.example^$elemhide",
		"##.ad-banner",
		"###sponsor",
	)
	var aaLines []string
	for i := 0; i < 150; i++ {
		aaLines = append(aaLines, "@@"+genExoticLine(rng))
	}
	aaLines = append(aaLines,
		"@@||docallow-aa.example^$document",
		"easylist-only.example#@#.ad-banner",
	)

	elText := strings.Join(elLines, "\n")
	aaText := strings.Join(aaLines, "\n")

	combined := mustEngine(t,
		listOf("easylist", elText),
		listOf("exceptionrules", aaText),
	)
	fresh := mustEngine(t, listOf("easylist", elText))
	view := mustProfile(t, combined, "easylist", "easylist")

	modes := map[string][]MatchOption{
		"instrumented":         nil,
		"short-circuit":        {WithShortCircuit()},
		"linear":               {WithLinearScan()},
		"short-circuit+linear": {WithShortCircuit(), WithLinearScan()},
	}
	sameMatch := func(a, b *Match) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || (a.Filter.Raw == b.Filter.Raw && a.List == b.List)
	}
	for j := 0; j < 2000; j++ {
		url := genExoticURL(rng)
		for mode, opts := range modes {
			vreq := &Request{URL: url, Type: filter.TypeImage, DocumentHost: "first-party.example"}
			freq := &Request{URL: url, Type: filter.TypeImage, DocumentHost: "first-party.example"}
			dv := view.MatchRequest(vreq, opts...)
			df := fresh.MatchRequest(freq, opts...)
			if dv.Verdict != df.Verdict || dv.DoNotTrack != df.DoNotTrack {
				t.Fatalf("%s divergence on %q: view %v/%v fresh %v/%v",
					mode, url, dv.Verdict, dv.DoNotTrack, df.Verdict, df.DoNotTrack)
			}
			if !sameMatch(dv.BlockedBy(), df.BlockedBy()) || !sameMatch(dv.AllowedBy(), df.AllowedBy()) {
				t.Fatalf("%s winner divergence on %q: view %+v/%+v fresh %+v/%+v",
					mode, url, dv.BlockedBy(), dv.AllowedBy(), df.BlockedBy(), df.AllowedBy())
			}
		}
		// Explained matches must agree too (and report the same winners).
		vreq := &Request{URL: url, Type: filter.TypeScript, DocumentHost: "first-party.example"}
		freq := &Request{URL: url, Type: filter.TypeScript, DocumentHost: "first-party.example"}
		var tv, tf Trail
		view.MatchRequest(vreq, WithExplain(&tv))
		fresh.MatchRequest(freq, WithExplain(&tf))
		if tv.Verdict != tf.Verdict {
			t.Fatalf("explain divergence on %q: view %s fresh %s", url, tv.Verdict, tf.Verdict)
		}
		if (tv.Block == nil) != (tf.Block == nil) || (tv.Block != nil && *tv.Block != *tf.Block) {
			t.Fatalf("explain block divergence on %q: view %+v fresh %+v", url, tv.Block, tf.Block)
		}
	}

	// Page permissions: sitekey and $document/$elemhide grants must look
	// identical through the view, and AA-only grants must not leak in.
	pages := []struct{ url, sitekey string }{
		{"http://sk.example/page", "c2l0ZWtleQ"},
		{"http://sk.example/page", ""},
		{"http://docallow.example/", ""},
		{"http://ehoff.example/", ""},
		{"http://docallow-aa.example/", ""},
		{"http://plain.example/", ""},
	}
	for _, p := range pages {
		fv := view.PagePermissions(p.url, p.sitekey)
		ff := fresh.PagePermissions(p.url, p.sitekey)
		if fv.DocumentAllowed != ff.DocumentAllowed || fv.ElemHideDisabled != ff.ElemHideDisabled {
			t.Errorf("PagePermissions(%q, %q): view %+v fresh %+v", p.url, p.sitekey, fv, ff)
		}
	}
	full, err := combined.View(DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	if f := full.PagePermissions("http://docallow-aa.example/", ""); !f.DocumentAllowed {
		t.Error("full view should honor the AA $document grant")
	}

	// Element hiding: the AA hide-exception for easylist-only.example must
	// not cancel the hide inside the easylist-only view, and the
	// stylesheets must agree with the fresh engine's.
	doc := htmldom.Parse(`<html><body><div class="ad-banner">x</div><p id="sponsor">y</p></body></html>`)
	hidesView := view.HideElements(doc, "http://easylist-only.example/", "easylist-only.example")
	hidesFresh := fresh.HideElements(doc, "http://easylist-only.example/", "easylist-only.example")
	if len(hidesView) != len(hidesFresh) {
		t.Fatalf("HideElements: view %d matches, fresh %d", len(hidesView), len(hidesFresh))
	}
	for i := range hidesView {
		if hidesView[i].Hidden() != hidesFresh[i].Hidden() {
			t.Errorf("hide %d: view hidden=%v fresh hidden=%v", i, hidesView[i].Hidden(), hidesFresh[i].Hidden())
		}
	}
	for _, host := range []string{"easylist-only.example", "plain.example"} {
		if v, f := view.ElemHideCSS(host), fresh.ElemHideCSS(host); v != f {
			t.Errorf("ElemHideCSS(%s): view %q fresh %q", host, v, f)
		}
	}
	// In the full view the AA exception cancels the .ad-banner hide on
	// easylist-only.example.
	for _, m := range full.HideElements(doc, "http://easylist-only.example/", "easylist-only.example") {
		if m.HiddenBy.Filter.Selector == ".ad-banner" && m.Hidden() {
			t.Error("full view should cancel the .ad-banner hide via the AA exception")
		}
	}
}

// TestEngineDiff pins the /v1/diff semantics: a request blocked by
// EasyList but excepted by the AA list reports the flipped verdicts and
// the responsible exception filter with its source list and line.
func TestEngineDiff(t *testing.T) {
	e := mustEngine(t,
		listOf("easylist", "||doubleclick.net^\n||adzerk.net^$third-party"),
		listOf("exceptionrules", "! AA exceptions\n@@||doubleclick.net/aa-ok/$image"),
	)
	el := mustProfile(t, e, "easylist", "easylist")
	full, err := e.View(DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}

	req, err := NewRequest("http://ad.doubleclick.net/aa-ok/pixel.gif", "http://news.example/", filter.TypeImage)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Diff(req, el, full)
	if d.A.Verdict != "blocked" || d.B.Verdict != "allowed" || !d.Flipped {
		t.Fatalf("diff = %+v, want blocked→allowed flip", d)
	}
	if d.Responsible == nil || d.Responsible.List != "exceptionrules" || d.Responsible.Line != 2 {
		t.Fatalf("responsible = %+v, want the AA exception at exceptionrules:2", d.Responsible)
	}
	if d.Responsible.Filter != "@@||doubleclick.net/aa-ok/$image" {
		t.Errorf("responsible filter = %q", d.Responsible.Filter)
	}
	if d.A.Block == nil || d.A.Block.List != "easylist" {
		t.Errorf("side A block = %+v, want the easylist blocker", d.A.Block)
	}

	// No flip when both profiles agree.
	req2, err := NewRequest("http://plain.example/app.js", "http://news.example/", filter.TypeScript)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Diff(req2, el, full); d.Flipped || d.Responsible != nil {
		t.Errorf("agreeing diff = %+v, want no flip", d)
	}
}

// TestDiffMatchesIndependentViews: over the exotic corpus, the
// single-pass Diff must report exactly what two independent per-view
// matches report.
func TestDiffMatchesIndependentViews(t *testing.T) {
	rng := xrand.New(4711)
	var elLines, aaLines []string
	for i := 0; i < 250; i++ {
		line := genExoticLine(rng)
		if rng.Intn(5) == 0 {
			line = "@@" + line
		}
		elLines = append(elLines, line)
	}
	for i := 0; i < 120; i++ {
		aaLines = append(aaLines, "@@"+genExoticLine(rng))
	}
	e := mustEngine(t,
		listOf("easylist", strings.Join(elLines, "\n")),
		listOf("exceptionrules", strings.Join(aaLines, "\n")),
	)
	el := mustProfile(t, e, "easylist", "easylist")
	full, err := e.View(DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	sameWinner := func(tm *TrailMatch, m *Match) bool {
		if (tm == nil) != (m == nil) {
			return false
		}
		return tm == nil || (tm.Filter == m.Filter.Raw && tm.List == m.List)
	}
	for j := 0; j < 3000; j++ {
		url := genExoticURL(rng)
		req := &Request{URL: url, Type: filter.TypeImage, DocumentHost: "first-party.example"}
		d := e.Diff(req, el, full)
		for _, side := range []struct {
			got  DiffSide
			view *View
		}{{d.A, el}, {d.B, full}} {
			ind := side.view.MatchRequest(&Request{URL: url, Type: filter.TypeImage, DocumentHost: "first-party.example"})
			if side.got.Verdict != ind.Verdict.String() {
				t.Fatalf("diff/%s verdict divergence on %q: diff=%s independent=%s",
					side.got.Profile, url, side.got.Verdict, ind.Verdict)
			}
			if !sameWinner(side.got.Block, ind.BlockedBy()) || !sameWinner(side.got.Exception, ind.AllowedBy()) {
				t.Fatalf("diff/%s winner divergence on %q: diff=%+v/%+v independent=%+v/%+v",
					side.got.Profile, url, side.got.Block, side.got.Exception,
					ind.BlockedBy(), ind.AllowedBy())
			}
		}
		if d.Flipped != (d.A.Verdict != d.B.Verdict) {
			t.Fatalf("Flipped inconsistent on %q: %+v", url, d)
		}
	}
}
