package engine

import (
	"strings"
	"testing"

	"acceptableads/internal/filter"
)

func explainEngine(t *testing.T) *Engine {
	t.Helper()
	return mustEngine(t,
		listOf("easylist", strings.Join([]string{
			"! easylist header",
			"||ads.example.com^",
			"||tracker.example.net^$script",
			"/banner/*$image",
		}, "\n")),
		listOf("exceptionrules", strings.Join([]string{
			"! exceptionrules header",
			"@@||ads.example.com/acceptable/$image",
		}, "\n")),
	)
}

// TestExplainBlocked: an explained blocked match names the winning filter
// with its source list and 1-based line, and records the gated candidate.
func TestExplainBlocked(t *testing.T) {
	e := explainEngine(t)
	req, err := NewRequest("http://ads.example.com/banner.gif", "http://news.example.com/", filter.TypeImage)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trail
	d := e.MatchRequest(req, WithExplain(&tr))
	if d.Verdict != Blocked {
		t.Fatalf("verdict = %v, want blocked", d.Verdict)
	}
	if tr.Mode != "instrumented" || tr.ShortCircuit {
		t.Errorf("mode = %q shortCircuit=%v, want instrumented/false", tr.Mode, tr.ShortCircuit)
	}
	if tr.Verdict != "blocked" {
		t.Errorf("trail verdict = %q, want %q", tr.Verdict, "blocked")
	}
	if tr.Block == nil {
		t.Fatal("trail has no winning block filter")
	}
	if tr.Block.Filter != "||ads.example.com^" || tr.Block.List != "easylist" || tr.Block.Line != 2 {
		t.Errorf("block = %+v, want ||ads.example.com^ easylist:2", *tr.Block)
	}
	if tr.Exception != nil {
		t.Errorf("unexpected exception on trail: %+v", *tr.Exception)
	}
	if tr.KeywordHashes == 0 || tr.BucketsProbed == 0 {
		t.Errorf("probe stats empty: hashes=%d buckets=%d", tr.KeywordHashes, tr.BucketsProbed)
	}
	found := false
	for _, c := range tr.Candidates {
		if c.Filter == "||ads.example.com^" && c.Role == "block" && c.Matched {
			found = true
		}
	}
	if !found {
		t.Errorf("winning filter missing from candidates: %+v", tr.Candidates)
	}
}

// TestExplainException: an allowed request names both the blocking filter
// it would have hit and the exception that overrode it.
func TestExplainException(t *testing.T) {
	e := explainEngine(t)
	req, err := NewRequest("http://ads.example.com/acceptable/ad.png", "http://news.example.com/", filter.TypeImage)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trail
	d := e.MatchRequest(req, WithExplain(&tr))
	if d.Verdict != Allowed {
		t.Fatalf("verdict = %v, want allowed", d.Verdict)
	}
	if tr.Exception == nil {
		t.Fatal("trail has no winning exception filter")
	}
	if tr.Exception.List != "exceptionrules" || tr.Exception.Line != 2 {
		t.Errorf("exception = %+v, want exceptionrules:2", *tr.Exception)
	}
	if tr.Block == nil {
		t.Error("instrumented trail should also name the overridden block filter")
	}
}

// TestExplainModes: the trail's mode string reflects the option set, and
// verdicts agree across all four evaluation modes.
func TestExplainModes(t *testing.T) {
	e := explainEngine(t)
	req, err := NewRequest("http://tracker.example.net/t.js", "http://news.example.com/", filter.TypeScript)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mode string
		opts []MatchOption
	}{
		{"instrumented", nil},
		{"short-circuit", []MatchOption{WithShortCircuit()}},
		{"instrumented+linear", []MatchOption{WithLinearScan()}},
		{"short-circuit+linear", []MatchOption{WithShortCircuit(), WithLinearScan()}},
	}
	for _, c := range cases {
		var tr Trail
		d := e.MatchRequest(req, append(c.opts, WithExplain(&tr))...)
		if tr.Mode != c.mode {
			t.Errorf("mode = %q, want %q", tr.Mode, c.mode)
		}
		if d.Verdict != Blocked || tr.Verdict != "blocked" {
			t.Errorf("mode %s: verdict = %v / trail %q, want blocked", c.mode, d.Verdict, tr.Verdict)
		}
		if tr.Block == nil {
			t.Errorf("mode %s: no block filter on trail", c.mode)
		}
	}
}

// TestExplainTrailReuse: a Trail is caller-owned and reset on entry, so
// reusing one across matches never leaks the previous outcome.
func TestExplainTrailReuse(t *testing.T) {
	e := explainEngine(t)
	blocked, err := NewRequest("http://ads.example.com/x.gif", "http://news.example.com/", filter.TypeImage)
	if err != nil {
		t.Fatal(err)
	}
	// No keyword overlap with any filter, so nothing is gated at all.
	clean, err := NewRequest("http://styles.test/app.css", "http://styles.test/", filter.TypeStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trail
	e.MatchRequest(blocked, WithExplain(&tr))
	if tr.Block == nil {
		t.Fatal("first match recorded no block")
	}
	d := e.MatchRequest(clean, WithExplain(&tr))
	if d.Verdict != NoMatch {
		t.Fatalf("verdict = %v, want no-match", d.Verdict)
	}
	if tr.Block != nil || tr.Exception != nil || tr.Verdict != "no-match" {
		t.Errorf("stale trail after reuse: block=%v exception=%v verdict=%q",
			tr.Block, tr.Exception, tr.Verdict)
	}
	if len(tr.Candidates) != 0 && tr.Candidates[0].Filter == "||ads.example.com^" {
		t.Errorf("stale candidates after reuse: %+v", tr.Candidates)
	}
}

// TestExplainCandidateCap: the candidate list is bounded and the overflow
// is counted, so a request hitting a huge bucket cannot balloon the trail.
func TestExplainCandidateCap(t *testing.T) {
	var lines []string
	for i := 0; i < trailMaxCandidates+100; i++ {
		// Same keyword, so every filter lands in one bucket and every one
		// is gated for a /kw/ request.
		lines = append(lines, "/kw/file"+string(rune('a'+i%26))+"$script,domain=d"+itoa(i)+".example")
	}
	e := mustEngine(t, listOf("big", strings.Join(lines, "\n")))
	req, err := NewRequest("http://x.example/kw/filea", "http://x.example/", filter.TypeScript)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trail
	e.MatchRequest(req, WithExplain(&tr))
	if len(tr.Candidates) > trailMaxCandidates {
		t.Errorf("candidates = %d, want <= %d", len(tr.Candidates), trailMaxCandidates)
	}
	if len(tr.Candidates) == trailMaxCandidates && tr.TruncatedCandidates == 0 {
		t.Error("cap reached but no truncation counted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestFilterStats: attribution counters index the effective filter of
// every match, and the aggregates roll up by list.
func TestFilterStats(t *testing.T) {
	e := explainEngine(t)
	reqs := []struct {
		url, doc string
		typ      filter.ContentType
	}{
		{"http://ads.example.com/a.gif", "http://news.example.com/", filter.TypeImage},
		{"http://ads.example.com/b.gif", "http://news.example.com/", filter.TypeImage},
		{"http://ads.example.com/acceptable/ad.png", "http://news.example.com/", filter.TypeImage},
	}
	for _, r := range reqs {
		req, err := NewRequest(r.url, r.doc, r.typ)
		if err != nil {
			t.Fatal(err)
		}
		e.MatchRequest(req, WithShortCircuit())
	}
	stats := e.FilterStats()
	if len(stats) != e.NumFilters() {
		t.Fatalf("FilterStats returned %d entries, want %d", len(stats), e.NumFilters())
	}
	byFilter := map[string]FilterStat{}
	for _, s := range stats {
		byFilter[s.Filter] = s
	}
	if got := byFilter["||ads.example.com^"]; got.Hits != 2 || got.List != "easylist" || got.Line != 2 {
		t.Errorf("||ads.example.com^ stat = %+v, want 2 hits from easylist:2", got)
	}
	if got := byFilter["@@||ads.example.com/acceptable/$image"]; got.Hits != 1 {
		t.Errorf("exception stat = %+v, want 1 hit", got)
	}

	top := e.TopFilters(1)
	if len(top) != 1 || top[0].Filter != "||ads.example.com^" {
		t.Errorf("TopFilters(1) = %+v, want the 2-hit blocker", top)
	}

	byList := e.AttributionByList()
	el := byList["easylist"]
	if el.Fired != 1 || el.Hits != 2 {
		t.Errorf("easylist attribution = %+v, want fired=1 hits=2", el)
	}
	ex := byList["exceptionrules"]
	if ex.Fired != 1 || ex.Hits != 1 {
		t.Errorf("exceptionrules attribution = %+v, want fired=1 hits=1", ex)
	}
}
