package engine

import (
	"testing"

	"acceptableads/internal/filter"
)

func TestNewRequestValidation(t *testing.T) {
	cases := []struct {
		url, doc string
		ok       bool
	}{
		{"http://ads.example.com/banner.js", "http://news.example.com/", true},
		{"https://track.io/r/collect?x=1", "news.example.com", true},
		{"//cdn.example.com/app.js", "http://news.example.com/", true},
		{"", "http://news.example.com/", false},
		{"http://", "http://news.example.com/", false},
		{"/relative/path.js", "http://news.example.com/", false},
		{"http://bad host/x", "http://news.example.com/", false},
	}
	for _, c := range cases {
		req, err := NewRequest(c.url, c.doc, filter.TypeScript)
		if c.ok && err != nil {
			t.Errorf("NewRequest(%q): unexpected error %v", c.url, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("NewRequest(%q): want error, got %+v", c.url, req)
			}
			continue
		}
		if req.URL != c.url {
			t.Errorf("NewRequest(%q): URL mangled to %q", c.url, req.URL)
		}
		if req.DocumentHost != "news.example.com" {
			t.Errorf("NewRequest(%q): DocumentHost = %q", c.url, req.DocumentHost)
		}
	}
}

func TestNewRequestDefaultsType(t *testing.T) {
	req, err := NewRequest("http://x.example/a.bin", "x.example", 0)
	if err != nil {
		t.Fatal(err)
	}
	if req.Type != filter.TypeOther {
		t.Errorf("zero type = %v, want TypeOther", req.Type)
	}
}

// TestPrepareMemoized asserts the core guarantee of the constructor: the
// expensive derivations (lowercasing, keyword extraction, third-party
// fold) run exactly once per request, no matter how many matches — and in
// how many modes — consume it.
func TestPrepareMemoized(t *testing.T) {
	e := mustEngine(t,
		listOf("easylist", "||ads.example.com^\n/banner/*$image"),
		listOf("exceptionrules", "@@||ads.example.com/ok/$script"),
	)
	req, err := NewRequest("http://ads.example.com/banner.js", "http://news.example.com/", filter.TypeScript)
	if err != nil {
		t.Fatal(err)
	}
	before := prepares.Load()
	for i := 0; i < 10; i++ {
		if d := e.MatchRequest(req); d.Verdict != Blocked {
			t.Fatalf("verdict = %v, want blocked", d.Verdict)
		}
		e.MatchRequest(req, WithShortCircuit())
		e.MatchRequest(req, WithLinearScan())
	}
	if got := prepares.Load() - before; got != 0 {
		t.Errorf("prepare ran %d times on a constructor-built request, want 0 (done in NewRequest)", got)
	}
}

// TestPrepareRecomputesOnMutation: legacy struct-literal requests that are
// mutated between matches must see fresh derivations, not stale memos.
func TestPrepareRecomputesOnMutation(t *testing.T) {
	e := mustEngine(t, listOf("easylist", "||ads.example.com^"))
	req := &Request{URL: "http://ads.example.com/a.js", Type: filter.TypeScript, DocumentHost: "news.example.com"}
	before := prepares.Load()
	if d := e.MatchRequest(req); d.Verdict != Blocked {
		t.Fatalf("verdict = %v, want blocked", d.Verdict)
	}
	if d := e.MatchRequest(req); d.Verdict != Blocked {
		t.Fatalf("repeat verdict = %v, want blocked", d.Verdict)
	}
	if got := prepares.Load() - before; got != 1 {
		t.Errorf("prepare ran %d times for an unchanged request, want 1", got)
	}
	req.URL = "http://fine.example.org/a.js"
	if d := e.MatchRequest(req); d.Verdict != NoMatch {
		t.Fatalf("post-mutation verdict = %v, want no-match", d.Verdict)
	}
	if got := prepares.Load() - before; got != 2 {
		t.Errorf("prepare ran %d times after a mutation, want 2", got)
	}
}
