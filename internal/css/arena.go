package css

import (
	"errors"
	"fmt"

	"acceptableads/internal/strtab"
)

// Arena is the flat, relocatable form of a batch of compiled selectors:
// every scalar step field lives in a dense column, and variable-length
// data (classes, attribute tests) lives in shared flat arrays windowed
// by offset columns. Encoding a compiled selector is a straight copy-out
// of its parts; Build reconstructs the whole batch with a handful of
// slab allocations instead of re-parsing selector text — the shape the
// engine's binary snapshot codec serializes.
//
// Offset columns carry one extra entry: selector i owns groups
// [SelOff[i], SelOff[i+1]), group g owns steps [GrpOff[g], GrpOff[g+1]),
// and step s owns Classes[ClsOff[s]:ClsOff[s+1]] and the attribute
// columns [AttrOff[s], AttrOff[s+1]).
// String-valued columns whose entries are copied out into the rebuilt
// structures (Raw, Tag, ID, AttrName, AttrVal) are strtab columns, so a
// decoded arena carries them as zero-copy views instead of materialized
// []string headers; Classes stays []string because Build windows it in
// place into each compound.
type Arena struct {
	Raw    strtab.Col // one per selector: the original text
	SelOff []uint32   // per selector → group range (len = nSel+1)
	GrpOff []uint32   // per group → step range (len = nGroups+1)

	// Per-step columns. Comb is the combinator relating a step to the
	// previous one (' ' descendant, '>' child; unused on the subject).
	Comb []uint8
	Tag  strtab.Col
	ID   strtab.Col

	ClsOff  []uint32 // per step → Classes window (len = nSteps+1)
	Classes []string

	AttrOff  []uint32 // per step → attribute window (len = nSteps+1)
	AttrName strtab.Col
	AttrOp   []uint8
	AttrVal  strtab.Col
}

// Append flattens one compiled selector onto the arena. Selectors are
// decoded by Build in append order.
func (a *Arena) Append(s *Selector) {
	if len(a.SelOff) == 0 {
		a.SelOff = append(a.SelOff, 0)
		a.GrpOff = append(a.GrpOff, 0)
		a.ClsOff = append(a.ClsOff, 0)
		a.AttrOff = append(a.AttrOff, 0)
	}
	a.Raw.Append(s.raw)
	for gi := range s.groups {
		for si := range s.groups[gi].seq {
			st := &s.groups[gi].seq[si]
			a.Comb = append(a.Comb, st.combinator)
			a.Tag.Append(st.compound.tag)
			a.ID.Append(st.compound.id)
			a.Classes = append(a.Classes, st.compound.classes...)
			a.ClsOff = append(a.ClsOff, uint32(len(a.Classes)))
			for _, at := range st.compound.attrs {
				a.AttrName.Append(at.name)
				a.AttrOp = append(a.AttrOp, at.op)
				a.AttrVal.Append(at.val)
			}
			a.AttrOff = append(a.AttrOff, uint32(a.AttrName.Len()))
		}
		a.GrpOff = append(a.GrpOff, uint32(len(a.Comb)))
	}
	a.SelOff = append(a.SelOff, uint32(len(a.GrpOff)-1))
}

// monotonic checks an offset column: len n+1, first 0, non-decreasing,
// final value flat.
func monotonic(name string, off []uint32, n, flat int) error {
	if len(off) != n+1 {
		return fmt.Errorf("css: arena: %s offsets have %d entries, want %d", name, len(off), n+1)
	}
	if off[0] != 0 || int(off[n]) != flat {
		return fmt.Errorf("css: arena: %s offsets span [%d..%d], want [0..%d]", name, off[0], off[n], flat)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("css: arena: %s offsets decrease at %d", name, i)
		}
	}
	return nil
}

// Build reconstructs every selector in the arena. The input is fully
// validated first — offset monotonicity, column lengths, the ≥1-group /
// ≥1-step structural invariants Match and Key rely on — so a corrupt
// arena yields an error, never a selector that panics later. The
// returned slice and all selector internals come from shared slabs; a
// handful of allocations covers the whole batch.
func (a *Arena) Build() ([]Selector, error) {
	for _, c := range []struct {
		name string
		col  *strtab.Col
	}{{"raw", &a.Raw}, {"tag", &a.Tag}, {"id", &a.ID}, {"attrname", &a.AttrName}, {"attrval", &a.AttrVal}} {
		if err := c.col.Validate(); err != nil {
			return nil, fmt.Errorf("css: arena: %s column: %w", c.name, err)
		}
	}
	nSel := a.Raw.Len()
	if nSel == 0 {
		if len(a.SelOff) > 1 || len(a.GrpOff) > 1 || len(a.Comb) > 0 {
			return nil, errors.New("css: arena: dangling groups with no selectors")
		}
		return nil, nil
	}
	nGrp := len(a.GrpOff) - 1
	nStep := len(a.Comb)
	if err := monotonic("selector", a.SelOff, nSel, nGrp); err != nil {
		return nil, err
	}
	if err := monotonic("group", a.GrpOff, nGrp, nStep); err != nil {
		return nil, err
	}
	if a.Tag.Len() != nStep || a.ID.Len() != nStep {
		return nil, fmt.Errorf("css: arena: %d tags / %d ids for %d steps", a.Tag.Len(), a.ID.Len(), nStep)
	}
	if err := monotonic("class", a.ClsOff, nStep, len(a.Classes)); err != nil {
		return nil, err
	}
	if err := monotonic("attribute", a.AttrOff, nStep, a.AttrName.Len()); err != nil {
		return nil, err
	}
	if a.AttrVal.Len() != a.AttrName.Len() || len(a.AttrOp) != a.AttrName.Len() {
		return nil, fmt.Errorf("css: arena: attribute columns disagree: %d names, %d ops, %d values",
			a.AttrName.Len(), len(a.AttrOp), a.AttrVal.Len())
	}
	for i, op := range a.AttrOp {
		switch op {
		case 0, '=', '^', '$', '*', '~':
		default:
			return nil, fmt.Errorf("css: arena: attribute %d has unknown operator %q", i, op)
		}
	}
	for i := 0; i < nSel; i++ {
		if a.SelOff[i] == a.SelOff[i+1] {
			return nil, fmt.Errorf("css: arena: selector %d has no groups", i)
		}
	}
	for g := 0; g < nGrp; g++ {
		if a.GrpOff[g] == a.GrpOff[g+1] {
			return nil, fmt.Errorf("css: arena: group %d has no steps", g)
		}
	}

	sels := make([]Selector, nSel)
	groups := make([]complexSelector, nGrp)
	steps := make([]step, nStep)
	attrs := make([]attrTest, a.AttrName.Len())
	for i := range attrs {
		attrs[i] = attrTest{name: a.AttrName.At(i), op: a.AttrOp[i], val: a.AttrVal.At(i)}
	}
	for s := 0; s < nStep; s++ {
		st := &steps[s]
		st.combinator = a.Comb[s]
		st.compound.tag = a.Tag.At(s)
		st.compound.id = a.ID.At(s)
		st.compound.classes = a.Classes[a.ClsOff[s]:a.ClsOff[s+1]:a.ClsOff[s+1]]
		st.compound.attrs = attrs[a.AttrOff[s]:a.AttrOff[s+1]:a.AttrOff[s+1]]
	}
	for g := 0; g < nGrp; g++ {
		groups[g].seq = steps[a.GrpOff[g]:a.GrpOff[g+1]:a.GrpOff[g+1]]
	}
	for i := 0; i < nSel; i++ {
		sels[i].raw = a.Raw.At(i)
		sels[i].groups = groups[a.SelOff[i]:a.SelOff[i+1]:a.SelOff[i+1]]
	}
	return sels, nil
}
