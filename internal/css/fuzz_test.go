package css

import (
	"strings"
	"testing"

	"acceptableads/internal/htmldom"
)

// FuzzCompile: the selector compiler either rejects the input or produces
// a selector that can match a document without panicking.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"#siteTable_organic", ".ButtonAd", "div.a.b", "#a > .b [x=y]",
		"*[data-kind^=ban]", "#a, .b, c", "a b > c", "[class~=last]",
		"div:hover", "[", "#", "..", "> x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := htmldom.Parse(`<div id="a" class="b c" data-kind="banner"><p class="last">x</p></div>`)
	f.Fuzz(func(t *testing.T, s string) {
		if strings.ContainsAny(s, "\n\r") {
			t.Skip()
		}
		sel, err := Compile(s)
		if err != nil {
			return
		}
		_ = sel.MatchAll(doc) // must not panic
		if sel.String() != s {
			t.Fatalf("String() = %q, want %q", sel.String(), s)
		}
		if key, ok := sel.Key(); ok && key == "" {
			t.Fatal("indexed selector with empty key")
		}
	})
}
