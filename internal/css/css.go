// Package css implements the CSS selector subset Adblock Plus element
// hiding filters use: type, #id, .class and [attribute] simple selectors,
// compound selectors, descendant and child combinators, and comma-separated
// selector groups.
//
// Selectors compile once into a Selector value and then match
// internal/htmldom nodes. The engine package builds an id/class index over
// compiled selectors so whole-document hiding stays fast on EasyList-scale
// rule sets.
package css

import (
	"errors"
	"strings"

	"acceptableads/internal/htmldom"
)

// Selector is a compiled selector group ready for matching.
type Selector struct {
	raw    string
	groups []complexSelector
}

// complexSelector is a chain of compound selectors joined by combinators,
// stored right-to-left: seq[0] matches the subject element itself.
type complexSelector struct {
	seq []step
}

type step struct {
	compound compound
	// combinator relates this step to the previous (more specific) one:
	// ' ' descendant, '>' child. Unused on seq[0].
	combinator byte
}

// compound is an intersection of simple selectors.
type compound struct {
	tag     string // "" or "*" matches any element
	id      string
	classes []string
	attrs   []attrTest
}

type attrTest struct {
	name string
	op   byte // 0 presence, '=' exact, '^' prefix, '*' substring, '$' suffix, '~' word
	val  string
}

// Compile parses a selector group. It returns an error for constructs
// outside the supported subset (pseudo-classes, sibling combinators).
func Compile(s string) (*Selector, error) {
	sel := &Selector{raw: s}
	for _, part := range splitTopLevel(s, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, errors.New("css: empty selector in group")
		}
		cx, err := compileComplex(part)
		if err != nil {
			return nil, err
		}
		sel.groups = append(sel.groups, cx)
	}
	if len(sel.groups) == 0 {
		return nil, errors.New("css: empty selector")
	}
	return sel, nil
}

// String returns the original selector text.
func (s *Selector) String() string { return s.raw }

// IndexKey names the id or class every match candidate for an indexable
// selector must carry: Kind is '#' (id) or '.' (class), Name the bare
// identifier. The two-field form is comparable, so it keys candidate
// maps directly — probing costs no "#"+id string concatenation, which
// matters both at snapshot-decode time (one insert per hiding filter)
// and on the per-document candidate walk.
type IndexKey struct {
	Kind byte
	Name string
}

// IndexKey returns the selector's index key, or ok=false when the
// selector needs a full scan. Only the subject compound is consulted.
func (s *Selector) IndexKey() (IndexKey, bool) {
	if len(s.groups) != 1 {
		return IndexKey{}, false
	}
	c := s.groups[0].seq[0].compound
	if c.id != "" {
		return IndexKey{Kind: '#', Name: c.id}, true
	}
	if len(c.classes) > 0 {
		return IndexKey{Kind: '.', Name: c.classes[0]}, true
	}
	return IndexKey{}, false
}

// Key is IndexKey rendered as the familiar "#id" / ".class" string form.
func (s *Selector) Key() (string, bool) {
	k, ok := s.IndexKey()
	if !ok {
		return "", false
	}
	return string(k.Kind) + k.Name, true
}

// Match reports whether node matches the selector.
func (s *Selector) Match(n *htmldom.Node) bool {
	if !n.IsElement() {
		return false
	}
	for _, g := range s.groups {
		if g.match(n) {
			return true
		}
	}
	return false
}

// MatchAll returns every element under root (inclusive) matching the
// selector, in document order.
func (s *Selector) MatchAll(root *htmldom.Node) []*htmldom.Node {
	var out []*htmldom.Node
	root.Walk(func(n *htmldom.Node) bool {
		if s.Match(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

func (cx complexSelector) match(n *htmldom.Node) bool {
	if !cx.seq[0].compound.match(n) {
		return false
	}
	node := n
	for i := 1; i < len(cx.seq); i++ {
		st := cx.seq[i]
		switch cx.seq[i-1].combinator {
		case '>':
			node = node.Parent
			if node == nil || !node.IsElement() || !st.compound.match(node) {
				return false
			}
		default: // descendant
			node = node.Parent
			for node != nil {
				if node.IsElement() && st.compound.match(node) {
					break
				}
				node = node.Parent
			}
			if node == nil {
				return false
			}
		}
	}
	return true
}

func (c compound) match(n *htmldom.Node) bool {
	if c.tag != "" && c.tag != "*" && n.Tag != c.tag {
		return false
	}
	if c.id != "" && n.ID() != c.id {
		return false
	}
	for _, cl := range c.classes {
		if !n.HasClass(cl) {
			return false
		}
	}
	for _, at := range c.attrs {
		v, ok := n.Attr(at.name)
		if !ok {
			return false
		}
		switch at.op {
		case 0:
		case '=':
			if v != at.val {
				return false
			}
		case '^':
			if !strings.HasPrefix(v, at.val) {
				return false
			}
		case '$':
			if !strings.HasSuffix(v, at.val) {
				return false
			}
		case '*':
			if !strings.Contains(v, at.val) {
				return false
			}
		case '~':
			found := false
			for _, w := range strings.Fields(v) {
				if w == at.val {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// splitTopLevel splits on sep outside of [] brackets.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func compileComplex(s string) (complexSelector, error) {
	// Tokenize into compounds and combinators, left to right, then
	// reverse so seq[0] is the subject.
	type unit struct {
		text string
		comb byte // combinator that FOLLOWS this compound
	}
	var units []unit
	i := 0
	for i < len(s) {
		// Skip whitespace; detect combinator.
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) {
			break
		}
		comb := byte(' ')
		if s[i] == '>' {
			comb = '>'
			i++
			for i < len(s) && s[i] == ' ' {
				i++
			}
		}
		start := i
		depth := 0
		for i < len(s) {
			if s[i] == '[' {
				depth++
			} else if s[i] == ']' {
				depth--
			} else if depth == 0 && (s[i] == ' ' || s[i] == '>') {
				break
			}
			i++
		}
		text := s[start:i]
		if text == "" {
			return complexSelector{}, errors.New("css: dangling combinator in " + s)
		}
		if len(units) > 0 {
			units[len(units)-1].comb = comb
		} else if comb == '>' {
			return complexSelector{}, errors.New("css: selector starts with combinator: " + s)
		}
		units = append(units, unit{text: text})
	}
	if len(units) == 0 {
		return complexSelector{}, errors.New("css: empty selector")
	}
	// Build right-to-left: seq[0] is the subject compound. The combinator
	// stored on seq[k] tells how seq[k+1] (an ancestor) relates to seq[k];
	// in source order that is the combinator written before units[i],
	// i.e. units[i-1].comb.
	var cx complexSelector
	for i := len(units) - 1; i >= 0; i-- {
		c, err := compileCompound(units[i].text)
		if err != nil {
			return complexSelector{}, err
		}
		cx.seq = append(cx.seq, step{compound: c})
	}
	for k := 0; k < len(cx.seq)-1; k++ {
		srcIdx := len(units) - 1 - k
		cx.seq[k].combinator = units[srcIdx-1].comb
	}
	return cx, nil
}

func compileCompound(s string) (compound, error) {
	var c compound
	i := 0
	// Leading type selector or universal.
	start := i
	for i < len(s) && isNameChar(s[i]) {
		i++
	}
	if i > start {
		c.tag = strings.ToLower(s[start:i])
	} else if i < len(s) && s[i] == '*' {
		c.tag = "*"
		i++
	}
	for i < len(s) {
		switch s[i] {
		case '#':
			i++
			start = i
			for i < len(s) && isNameChar(s[i]) {
				i++
			}
			if i == start {
				return c, errors.New("css: empty id selector in " + s)
			}
			c.id = s[start:i]
		case '.':
			i++
			start = i
			for i < len(s) && isNameChar(s[i]) {
				i++
			}
			if i == start {
				return c, errors.New("css: empty class selector in " + s)
			}
			c.classes = append(c.classes, s[start:i])
		case '[':
			end := strings.IndexByte(s[i:], ']')
			if end < 0 {
				return c, errors.New("css: unterminated attribute selector in " + s)
			}
			at, err := compileAttr(s[i+1 : i+end])
			if err != nil {
				return c, err
			}
			c.attrs = append(c.attrs, at)
			i += end + 1
		default:
			return c, errors.New("css: unsupported selector syntax at " + s[i:])
		}
	}
	return c, nil
}

func compileAttr(s string) (attrTest, error) {
	s = strings.TrimSpace(s)
	var at attrTest
	i := 0
	for i < len(s) && (isNameChar(s[i]) || s[i] == ':') {
		i++
	}
	if i == 0 {
		return at, errors.New("css: empty attribute name")
	}
	at.name = strings.ToLower(s[:i])
	if i == len(s) {
		return at, nil // presence test
	}
	switch s[i] {
	case '=':
		at.op = '='
		i++
	case '^', '$', '*', '~':
		at.op = s[i]
		if i+1 >= len(s) || s[i+1] != '=' {
			return at, errors.New("css: malformed attribute operator in " + s)
		}
		i += 2
	default:
		return at, errors.New("css: malformed attribute selector " + s)
	}
	val := s[i:]
	if len(val) >= 2 && (val[0] == '"' || val[0] == '\'') && val[len(val)-1] == val[0] {
		val = val[1 : len(val)-1]
	}
	at.val = val
	return at, nil
}

func isNameChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '-' || b == '_'
}
