package css

import (
	"testing"

	"acceptableads/internal/htmldom"
)

const page = `<html><body>
	<div id="siteTable_organic" class="sponsored thing">sponsored link</div>
	<div id="ad_main"><iframe src="x"></iframe></div>
	<div class="ButtonAd big">btn</div>
	<div id="sideads"><ul><li class="item">a</li><li class="item last">b</li></ul></div>
	<span data-ad-slot="top" data-kind="banner">s</span>
	<div id="influads_block"><img src="y"></div>
	<section><div class="inner"><p class="deep">t</p></div></section>
</body></html>`

func doc(t *testing.T) *htmldom.Node {
	t.Helper()
	return htmldom.Parse(page)
}

func mustCompile(t *testing.T, s string) *Selector {
	t.Helper()
	sel, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile(%q): %v", s, err)
	}
	return sel
}

func TestIDSelector(t *testing.T) {
	// The paper's Reddit element filter selector.
	sel := mustCompile(t, "#siteTable_organic")
	got := sel.MatchAll(doc(t))
	if len(got) != 1 || got[0].ID() != "siteTable_organic" {
		t.Fatalf("matched %d nodes", len(got))
	}
}

func TestClassSelector(t *testing.T) {
	// Appendix A's ".ButtonAd" example.
	sel := mustCompile(t, ".ButtonAd")
	got := sel.MatchAll(doc(t))
	if len(got) != 1 || !got[0].HasClass("big") {
		t.Fatalf("matched %d nodes", len(got))
	}
}

func TestTagSelector(t *testing.T) {
	sel := mustCompile(t, "iframe")
	if got := sel.MatchAll(doc(t)); len(got) != 1 {
		t.Fatalf("matched %d iframes, want 1", len(got))
	}
}

func TestCompoundSelector(t *testing.T) {
	sel := mustCompile(t, "div.sponsored.thing")
	got := sel.MatchAll(doc(t))
	if len(got) != 1 || got[0].ID() != "siteTable_organic" {
		t.Fatalf("compound matched %d", len(got))
	}
	none := mustCompile(t, "span.sponsored")
	if got := none.MatchAll(doc(t)); len(got) != 0 {
		t.Fatalf("span.sponsored matched %d, want 0", len(got))
	}
}

func TestAttributeSelectors(t *testing.T) {
	cases := []struct {
		sel  string
		want int
	}{
		{`[data-ad-slot]`, 1},
		{`[data-ad-slot=top]`, 1},
		{`[data-ad-slot="top"]`, 1},
		{`[data-ad-slot=bottom]`, 0},
		{`span[data-kind^=ban]`, 1},
		{`span[data-kind$=ner]`, 1},
		{`span[data-kind*=anne]`, 1},
		{`[class~=last]`, 1},
	}
	d := doc(t)
	for _, c := range cases {
		sel := mustCompile(t, c.sel)
		if got := sel.MatchAll(d); len(got) != c.want {
			t.Errorf("%q matched %d, want %d", c.sel, len(got), c.want)
		}
	}
}

func TestDescendantCombinator(t *testing.T) {
	sel := mustCompile(t, "#sideads .item")
	if got := sel.MatchAll(doc(t)); len(got) != 2 {
		t.Fatalf("descendant matched %d, want 2", len(got))
	}
	sel2 := mustCompile(t, "section p.deep")
	if got := sel2.MatchAll(doc(t)); len(got) != 1 {
		t.Fatalf("deep descendant matched %d, want 1", len(got))
	}
}

func TestChildCombinator(t *testing.T) {
	sel := mustCompile(t, "#sideads > ul > li")
	if got := sel.MatchAll(doc(t)); len(got) != 2 {
		t.Fatalf("child matched %d, want 2", len(got))
	}
	// li is not a direct child of #sideads.
	sel2 := mustCompile(t, "#sideads > li")
	if got := sel2.MatchAll(doc(t)); len(got) != 0 {
		t.Fatalf("#sideads > li matched %d, want 0", len(got))
	}
	// Mixed: descendant then child.
	sel3 := mustCompile(t, "section div > p")
	if got := sel3.MatchAll(doc(t)); len(got) != 1 {
		t.Fatalf("mixed combinators matched %d, want 1", len(got))
	}
}

func TestSelectorGroups(t *testing.T) {
	sel := mustCompile(t, "#ad_main, .ButtonAd, #influads_block")
	if got := sel.MatchAll(doc(t)); len(got) != 3 {
		t.Fatalf("group matched %d, want 3", len(got))
	}
}

func TestUniversalSelector(t *testing.T) {
	sel := mustCompile(t, "*[data-kind]")
	if got := sel.MatchAll(doc(t)); len(got) != 1 {
		t.Fatalf("universal matched %d, want 1", len(got))
	}
}

func TestKey(t *testing.T) {
	cases := []struct {
		sel     string
		key     string
		indexed bool
	}{
		{"#ad_main", "#ad_main", true},
		{".ButtonAd", ".ButtonAd", true},
		{"div#ad_main", "#ad_main", true},
		{"div", "", false},
		{"[data-x]", "", false},
		{"#a, #b", "", false},
	}
	for _, c := range cases {
		sel := mustCompile(t, c.sel)
		key, ok := sel.Key()
		if key != c.key || ok != c.indexed {
			t.Errorf("Key(%q) = %q,%v want %q,%v", c.sel, key, ok, c.key, c.indexed)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"", " , ", "div:hover", "#", ".", "[", "[=x]", "> div", "div >",
		"a + b", "[attr!=x]",
	}
	for _, s := range bad {
		if _, err := Compile(s); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", s)
		}
	}
}

func TestMatchNonElement(t *testing.T) {
	sel := mustCompile(t, "*")
	text := &htmldom.Node{Tag: "#text", Text: "x"}
	if sel.Match(text) {
		t.Error("selector matched a text node")
	}
}
