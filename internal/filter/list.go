package filter

import (
	"bufio"
	"io"
	"strings"
)

// List is an ordered filter list: the unit Adblock Plus users subscribe to.
// The order matters — comments carry group metadata (forum links, the
// paper's "!A<n>" markers) for the filters that follow them.
type List struct {
	// Name identifies the list, e.g. "easylist" or "exceptionrules".
	Name string
	// Entries holds every line in order, including comments and invalid
	// lines, so history and hygiene analyses can see everything.
	Entries []*Filter
}

// ParseList reads filter list text line by line. It never fails on filter
// content — bad lines become KindInvalid entries — and returns an error only
// for I/O problems.
func ParseList(name string, r io.Reader) (*List, error) {
	l := &List{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		l.Entries = append(l.Entries, Parse(sc.Text()))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// ParseListString is ParseList over an in-memory string.
func ParseListString(name, text string) *List {
	l, _ := ParseList(name, strings.NewReader(text)) // strings.Reader cannot fail
	return l
}

// Active returns the filters that participate in matching, skipping
// comments and invalid lines.
func (l *List) Active() []*Filter {
	var out []*Filter
	for _, f := range l.Entries {
		if f.IsActive() {
			out = append(out, f)
		}
	}
	return out
}

// Comments returns the comment entries in order.
func (l *List) Comments() []*Filter {
	var out []*Filter
	for _, f := range l.Entries {
		if f.Kind == KindComment {
			out = append(out, f)
		}
	}
	return out
}

// Invalid returns the entries that failed to parse — the malformed filters
// the paper's hygiene section (§8) reports.
func (l *List) Invalid() []*Filter {
	var out []*Filter
	for _, f := range l.Entries {
		if f.Kind == KindInvalid {
			out = append(out, f)
		}
	}
	return out
}

// Duplicates returns, for each filter text appearing more than once among
// active entries, one representative and the number of occurrences.
func (l *List) Duplicates() map[string]int {
	seen := make(map[string]int)
	for _, f := range l.Entries {
		if f.IsActive() {
			seen[strings.TrimSpace(f.Raw)]++
		}
	}
	dups := make(map[string]int)
	for text, n := range seen {
		if n > 1 {
			dups[text] = n
		}
	}
	return dups
}

// String reassembles the list text.
func (l *List) String() string {
	var b strings.Builder
	for _, f := range l.Entries {
		b.WriteString(f.Raw)
		b.WriteByte('\n')
	}
	return b.String()
}

// Group is a run of consecutive active filters preceded by comment lines;
// the whitelist is organised in such groups, each normally introduced by a
// comment containing a forum link ("! http://adblockplus.org/forum/...").
// Undocumented additions instead carry opaque markers such as "! A6".
type Group struct {
	// Comments are the comment texts introducing the group.
	Comments []string
	// Filters are the group's active filters.
	Filters []*Filter
}

// ForumLink returns the first adblockplus.org forum URL among the group's
// comments, or "".
func (g *Group) ForumLink() string {
	for _, c := range g.Comments {
		if i := strings.Index(c, "adblockplus.org/forum"); i >= 0 {
			// Return the whole whitespace-delimited token containing it.
			for _, tok := range strings.Fields(c) {
				if strings.Contains(tok, "adblockplus.org/forum") {
					return tok
				}
			}
			return c
		}
	}
	return ""
}

// AMarker returns the "A<n>" label if the group is introduced by one of the
// paper's nondescript A-filter comments (e.g. "! A6"), or "".
func (g *Group) AMarker() string {
	for _, c := range g.Comments {
		t := strings.TrimSpace(c)
		if len(t) >= 2 && t[0] == 'A' && allDigits(t[1:]) {
			return t
		}
	}
	return ""
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Groups splits the list into comment-introduced groups. Filters appearing
// before any comment form a group with no comments.
func (l *List) Groups() []*Group {
	var groups []*Group
	cur := &Group{}
	flush := func() {
		if len(cur.Filters) > 0 || len(cur.Comments) > 0 {
			groups = append(groups, cur)
		}
		cur = &Group{}
	}
	for _, f := range l.Entries {
		switch f.Kind {
		case KindComment:
			if f.Text == "" && f.Raw == "" {
				continue // blank separator line
			}
			if len(cur.Filters) > 0 {
				flush()
			}
			cur.Comments = append(cur.Comments, f.Text)
		case KindInvalid:
			continue
		default:
			cur.Filters = append(cur.Filters, f)
		}
	}
	flush()
	return groups
}
