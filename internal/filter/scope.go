package filter

import (
	"sort"
	"strings"

	"acceptableads/internal/domainutil"
)

// Scope classifies a whitelist filter by the set of first-party domains
// that can activate it — the hierarchy of Figure 4 in the paper.
type Scope uint8

const (
	// ScopeRestricted filters explicitly enumerate the first-party
	// domains they activate on, via $domain= or an element filter's
	// domain prefix. 89% of the whitelist.
	ScopeRestricted Scope = iota
	// ScopeSitekey filters activate on any domain presenting a valid
	// signature under one of the filter's RSA sitekeys.
	ScopeSitekey
	// ScopeUnrestricted filters can activate on any first-party domain.
	ScopeUnrestricted
	// ScopePatternScoped filters carry no domain restriction but their
	// URL pattern names a concrete publisher path (e.g.
	// "@@||adzerk.net/reddit/"), so their practical reach is narrower
	// than a fully unrestricted filter even though, by definition, any
	// first party could trigger them. The paper folds these into the
	// restricted/unrestricted discussion; we keep them distinct so the
	// Figure 4 hierarchy can show them.
	ScopePatternScoped
)

// String names the scope class.
func (s Scope) String() string {
	switch s {
	case ScopeRestricted:
		return "restricted"
	case ScopeSitekey:
		return "sitekey"
	case ScopeUnrestricted:
		return "unrestricted"
	case ScopePatternScoped:
		return "pattern-scoped"
	default:
		return "unknown"
	}
}

// ClassifyScope determines the filter's scope class. Sitekey restriction
// wins over domain restriction (sitekey filters delegate whitelisting to
// whoever holds the key); a positive domain list makes a filter restricted;
// otherwise the filter is unrestricted, or pattern-scoped when its pattern
// pins a multi-segment URL path.
func ClassifyScope(f *Filter) Scope {
	if len(f.Sitekeys) > 0 {
		return ScopeSitekey
	}
	if f.HasPositiveDomains() {
		return ScopeRestricted
	}
	if f.Kind == KindRequestBlock || f.Kind == KindRequestException {
		// A document-level filter ($document/$elemhide) whose pattern
		// pins a hostname is restricted: "@@||ask.com^$elemhide" can
		// only activate while browsing ask.com, so the paper counts
		// ask.com as explicitly listed.
		if f.IsDocumentLevel() && f.PatternHost() != "" {
			return ScopeRestricted
		}
		if patternPinsPath(f) {
			return ScopePatternScoped
		}
	}
	return ScopeUnrestricted
}

// patternPinsPath reports whether a domain-anchored pattern pins a
// publisher *section* of an ad server, e.g. "||adzerk.net/reddit/" — the
// path continues past the hostname and ends in "/". Patterns that pin a
// specific resource instead ("||google.com/adsense/search/ads.js") stay
// unrestricted, matching the paper's treatment of the A59 filter as an
// unrestricted exception.
func patternPinsPath(f *Filter) bool {
	if f.IsRegex || !f.AnchorDomain {
		return false
	}
	slash := strings.IndexByte(f.Pattern, '/')
	if slash < 0 || slash == len(f.Pattern)-1 {
		return false
	}
	rest := f.Pattern[slash+1:]
	return strings.HasSuffix(f.Pattern, "/") && strings.Trim(rest, "^*/") != ""
}

// ScopeCount tallies scope classes over a set of filters.
type ScopeCount struct {
	Restricted    int
	Unrestricted  int
	Sitekey       int
	PatternScoped int
}

// Total returns the number of classified filters.
func (c ScopeCount) Total() int {
	return c.Restricted + c.Unrestricted + c.Sitekey + c.PatternScoped
}

// CountScopes classifies every active filter in the list.
func CountScopes(l *List) ScopeCount {
	var c ScopeCount
	for _, f := range l.Active() {
		switch ClassifyScope(f) {
		case ScopeRestricted:
			c.Restricted++
		case ScopeUnrestricted:
			c.Unrestricted++
		case ScopeSitekey:
			c.Sitekey++
		case ScopePatternScoped:
			c.PatternScoped++
		}
	}
	return c
}

// ExplicitDomains returns the sorted set of fully qualified first-party
// domains explicitly named by restricted filters in the list — the
// "explicitly listed publisher domains" of Table 2. Domain options,
// element filter prefixes, and the pattern hosts of document-level filters
// all count.
func ExplicitDomains(l *List) []string {
	set := make(map[string]bool)
	for _, f := range l.Active() {
		for _, d := range f.PositiveDomains() {
			set[d] = true
		}
		if f.IsDocumentLevel() && !f.IsSitekey() {
			if h := f.PatternHost(); h != "" {
				set[h] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// RegistrableDomains folds a set of fully qualified domains to their
// registrable (effective second-level) domains, sorted and deduplicated —
// e.g. google.com for maps.google.com.
func RegistrableDomains(fqdns []string) []string {
	set := make(map[string]bool)
	for _, d := range fqdns {
		set[domainutil.Registrable(d)] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
