package filter

import (
	"strings"
	"testing"
)

// The test vectors below are drawn directly from the paper's figures and
// running text.

func TestParseBlockingRequest(t *testing.T) {
	f := Parse("||adzerk.net^$third-party")
	if f.Kind != KindRequestBlock {
		t.Fatalf("kind = %v, want block", f.Kind)
	}
	if !f.AnchorDomain {
		t.Error("expected AnchorDomain")
	}
	if f.Pattern != "adzerk.net^" {
		t.Errorf("pattern = %q", f.Pattern)
	}
	if f.ThirdParty != Yes {
		t.Errorf("third-party = %v, want Yes", f.ThirdParty)
	}
	if f.TypeMask != DefaultTypes {
		t.Errorf("type mask = %v, want defaults", f.TypeMask)
	}
}

func TestParseRequestException(t *testing.T) {
	f := Parse("@@||adzerk.net/reddit/$subdocument,document,domain=reddit.com")
	if f.Kind != KindRequestException {
		t.Fatalf("kind = %v, want exception", f.Kind)
	}
	if f.TypeMask != TypeSubdocument|TypeDocument {
		t.Errorf("type mask = %v", f.TypeMask)
	}
	if len(f.Domains) != 1 || f.Domains[0].Domain != "reddit.com" || f.Domains[0].Negated {
		t.Errorf("domains = %+v", f.Domains)
	}
	if ClassifyScope(f) != ScopeRestricted {
		t.Errorf("scope = %v, want restricted", ClassifyScope(f))
	}
}

func TestParseElemHide(t *testing.T) {
	f := Parse("reddit.com###siteTable_organic")
	if f.Kind != KindElemHide {
		t.Fatalf("kind = %v, want elemhide", f.Kind)
	}
	if f.Selector != "#siteTable_organic" {
		t.Errorf("selector = %q", f.Selector)
	}
	if len(f.Domains) != 1 || f.Domains[0].Domain != "reddit.com" {
		t.Errorf("domains = %+v", f.Domains)
	}
}

func TestParseElemHideException(t *testing.T) {
	f := Parse("reddit.com#@##ad_main")
	if f.Kind != KindElemHideException {
		t.Fatalf("kind = %v, want elemhide-exception", f.Kind)
	}
	if f.Selector != "#ad_main" {
		t.Errorf("selector = %q", f.Selector)
	}
	if ClassifyScope(f) != ScopeRestricted {
		t.Errorf("scope = %v, want restricted", ClassifyScope(f))
	}
}

func TestParseUnrestrictedElemHide(t *testing.T) {
	// The whitelist's single unrestricted element exception (§4.2.2).
	f := Parse("#@##influads_block")
	if f.Kind != KindElemHideException {
		t.Fatalf("kind = %v, want elemhide-exception", f.Kind)
	}
	if f.Selector != "#influads_block" {
		t.Errorf("selector = %q", f.Selector)
	}
	if len(f.Domains) != 0 {
		t.Errorf("domains = %+v, want none", f.Domains)
	}
	if ClassifyScope(f) != ScopeUnrestricted {
		t.Errorf("scope = %v, want unrestricted", ClassifyScope(f))
	}
}

func TestParseSitekeyFilter(t *testing.T) {
	f := Parse("@@$sitekey=MFwwDQYJKwEAAQ,document")
	if f.Kind != KindRequestException {
		t.Fatalf("kind = %v, want exception (err=%s)", f.Kind, f.Text)
	}
	if !f.IsSitekey() {
		t.Fatal("expected sitekey filter")
	}
	if len(f.Sitekeys) != 1 || f.Sitekeys[0] != "MFwwDQYJKwEAAQ" {
		t.Errorf("sitekeys = %v", f.Sitekeys)
	}
	if f.TypeMask != TypeDocument {
		t.Errorf("type mask = %v, want document", f.TypeMask)
	}
	if ClassifyScope(f) != ScopeSitekey {
		t.Errorf("scope = %v, want sitekey", ClassifyScope(f))
	}
}

func TestParseMultipleSitekeys(t *testing.T) {
	f := Parse("@@$sitekey=KEYA|KEYB,document")
	if len(f.Sitekeys) != 2 {
		t.Fatalf("sitekeys = %v", f.Sitekeys)
	}
}

func TestParsePageFairFilters(t *testing.T) {
	// §4.2.2's PageFair unrestricted exceptions.
	for _, line := range []string{
		"@@||pagefair.net^$third-party",
		"@@||tracking.admarketplace.net^$third-party",
		"@@||imp.admarketplace.net^$third-party",
	} {
		f := Parse(line)
		if f.Kind != KindRequestException {
			t.Errorf("%s: kind = %v", line, f.Kind)
		}
		if ClassifyScope(f) != ScopeUnrestricted {
			t.Errorf("%s: scope = %v, want unrestricted", line, ClassifyScope(f))
		}
	}
}

func TestParseInfluadsFilters(t *testing.T) {
	f := Parse("@@||influads.com^$script,image")
	if f.TypeMask != TypeScript|TypeImage {
		t.Errorf("type mask = %v", f.TypeMask)
	}
}

func TestParseGolemFilters(t *testing.T) {
	// §7's golem.de episode filters.
	f := Parse("@@||google.com/ads/search/module/ads/*/search.js$domain=suche.golem.de|www.google.com")
	if f.Kind != KindRequestException {
		t.Fatalf("kind = %v (err=%s)", f.Kind, f.Text)
	}
	if len(f.Domains) != 2 {
		t.Fatalf("domains = %+v", f.Domains)
	}
	if f.Domains[0].Domain != "suche.golem.de" || f.Domains[1].Domain != "www.google.com" {
		t.Errorf("domains = %+v", f.Domains)
	}
	g := Parse("www.google.com#@##adBlock")
	if g.Kind != KindElemHideException || g.Selector != "#adBlock" {
		t.Errorf("golem element filter parsed as %v selector %q", g.Kind, g.Selector)
	}
}

func TestParseComcastAFilters(t *testing.T) {
	// Figure 11's A29 group.
	for _, line := range []string{
		"@@||google.com/adsense/search/ads.js$domain=search.comcast.net",
		"@@||google.com/ads/search/module/ads/*/search.js$script,domain=search.comcast.net",
		"@@||google.com/afs/$script,subdocument,document,domain=search.comcast.net",
	} {
		f := Parse(line)
		if f.Kind != KindRequestException {
			t.Errorf("%s: kind = %v err=%s", line, f.Kind, f.Text)
		}
		if ClassifyScope(f) != ScopeRestricted {
			t.Errorf("%s: scope = %v", line, ClassifyScope(f))
		}
	}
}

func TestParseElemhideOptionFilter(t *testing.T) {
	// Figure 11's A6 group: "@@||Ask.com^$elemhide".
	f := Parse("@@||ask.com^$elemhide")
	if f.Kind != KindRequestException {
		t.Fatalf("kind = %v", f.Kind)
	}
	if f.TypeMask != TypeElemHide {
		t.Errorf("type mask = %v, want elemhide", f.TypeMask)
	}
}

func TestParseAnchors(t *testing.T) {
	f := Parse("|http://example.com/ad.jpg|")
	if !f.AnchorStart || !f.AnchorEnd || f.AnchorDomain {
		t.Errorf("anchors = start=%v end=%v domain=%v", f.AnchorStart, f.AnchorEnd, f.AnchorDomain)
	}
	if f.Pattern != "http://example.com/ad.jpg" {
		t.Errorf("pattern = %q", f.Pattern)
	}
}

func TestParseRegexFilter(t *testing.T) {
	f := Parse("/banner[0-9]+/")
	if !f.IsRegex {
		t.Fatal("expected regex filter")
	}
	if f.Pattern != "banner[0-9]+" {
		t.Errorf("pattern = %q", f.Pattern)
	}
}

func TestParseComments(t *testing.T) {
	f := Parse("! A6")
	if f.Kind != KindComment || f.Text != "A6" {
		t.Errorf("comment parse: %v %q", f.Kind, f.Text)
	}
	h := Parse("[Adblock Plus 2.0]")
	if h.Kind != KindComment {
		t.Errorf("header parse: %v", h.Kind)
	}
	b := Parse("")
	if b.Kind != KindComment {
		t.Errorf("blank line parse: %v", b.Kind)
	}
}

func TestParseNegatedOptions(t *testing.T) {
	f := Parse("||example.com^$~script,~image")
	want := DefaultTypes &^ (TypeScript | TypeImage)
	if f.TypeMask != want {
		t.Errorf("type mask = %v, want %v", f.TypeMask, want)
	}
	g := Parse("||example.com^$~third-party")
	if g.ThirdParty != No {
		t.Errorf("third-party = %v, want No", g.ThirdParty)
	}
}

func TestParseNegatedDomains(t *testing.T) {
	f := Parse("||example.com^$domain=good.com|~bad.good.com")
	if !f.AppliesToDomain("good.com") {
		t.Error("should apply to good.com")
	}
	if !f.AppliesToDomain("sub.good.com") {
		t.Error("should apply to sub.good.com")
	}
	if f.AppliesToDomain("bad.good.com") {
		t.Error("should not apply to bad.good.com")
	}
	if f.AppliesToDomain("x.bad.good.com") {
		t.Error("should not apply to x.bad.good.com")
	}
	if f.AppliesToDomain("other.com") {
		t.Error("should not apply to other.com")
	}
}

func TestParseOnlyNegatedDomains(t *testing.T) {
	f := Parse("||tracker.example^$domain=~excluded.com")
	if !f.AppliesToDomain("anything.net") {
		t.Error("negative-only domain list should apply elsewhere")
	}
	if f.AppliesToDomain("excluded.com") {
		t.Error("should not apply to excluded domain")
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []string{
		"||example.com^$bogus-option",
		"##",
		"@@$sitekey=",
		"||example.com^$domain=",
		"||example.com^$~match-case",
	}
	for _, line := range cases {
		if f := Parse(line); f.Kind != KindInvalid {
			t.Errorf("Parse(%q).Kind = %v, want invalid", line, f.Kind)
		}
	}
}

func TestParseTruncatedFilter(t *testing.T) {
	// §8: filters truncated at 4095 characters are malformed.
	long := "||example.com/" + strings.Repeat("a", MaxLength)
	f := Parse(long)
	if f.Kind != KindInvalid {
		t.Errorf("overlong filter kind = %v, want invalid", f.Kind)
	}
}

func TestDollarInsidePattern(t *testing.T) {
	// A "$" whose remainder does not have option-list shape is pattern text.
	f := Parse("||example.com/page$?x=1")
	if f.Kind != KindRequestBlock {
		t.Fatalf("kind = %v (err=%s)", f.Kind, f.Text)
	}
	if f.Pattern != "example.com/page$?x=1" {
		t.Errorf("pattern = %q", f.Pattern)
	}
	// But option-shaped text with an unknown name makes the filter invalid,
	// matching Adblock Plus's unknown-option error.
	g := Parse("||example.com/page$ref=x")
	if g.Kind != KindInvalid {
		t.Errorf("unknown option kind = %v, want invalid", g.Kind)
	}
}

func TestMultiDomainElemHide(t *testing.T) {
	// Appendix A example: mnn.com,streamtuner.me###adv
	f := Parse("mnn.com,streamtuner.me###adv")
	if f.Kind != KindElemHide || len(f.Domains) != 2 {
		t.Fatalf("kind=%v domains=%+v", f.Kind, f.Domains)
	}
	if !f.AppliesToDomain("mnn.com") || !f.AppliesToDomain("streamtuner.me") {
		t.Error("should apply to both listed domains")
	}
	if f.AppliesToDomain("other.org") {
		t.Error("should not apply elsewhere")
	}
}

func TestNegatedElemHideDomain(t *testing.T) {
	f := Parse("example.com,~sub.example.com##.ad")
	if !f.AppliesToDomain("example.com") || f.AppliesToDomain("sub.example.com") {
		t.Error("negated elemhide domain mis-handled")
	}
}

func TestPositiveDomains(t *testing.T) {
	f := Parse("@@||g.doubleclick.net/pagead/$subdocument,domain=references.net")
	got := f.PositiveDomains()
	if len(got) != 1 || got[0] != "references.net" {
		t.Errorf("PositiveDomains = %v", got)
	}
}

func TestScopePatternScoped(t *testing.T) {
	f := Parse("@@||adzerk.net/reddit/")
	if ClassifyScope(f) != ScopePatternScoped {
		t.Errorf("scope = %v, want pattern-scoped", ClassifyScope(f))
	}
	g := Parse("@@||pagefair.net^$third-party")
	if ClassifyScope(g) != ScopeUnrestricted {
		t.Errorf("scope = %v, want unrestricted", ClassifyScope(g))
	}
}

func TestRoundTripRaw(t *testing.T) {
	lines := []string{
		"||adzerk.net^$third-party",
		"@@||pagefair.net^$third-party",
		"reddit.com#@##ad_main",
		"! comment",
	}
	for _, line := range lines {
		if got := Parse(line).String(); got != line {
			t.Errorf("String() = %q, want %q", got, line)
		}
	}
}
