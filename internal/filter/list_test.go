package filter

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleList = `[Adblock Plus 2.0]
! Text ads on Sedo parking domains
@@$sitekey=MFwwDQYJKwEAAQ,document
! http://adblockplus.org/forum/viewtopic.php?f=12&t=1234
@@||adzerk.net/reddit/$subdocument,document,domain=reddit.com
reddit.com#@##ad_main
! A6
@@||ask.com^$elemhide
@@||us.ask.com^$elemhide
@@||uk.ask.com^$elemhide
@@||pagefair.net^$third-party
@@||pagefair.net^$third-party
||example.com^$bogus
`

func TestParseListCounts(t *testing.T) {
	l := ParseListString("sample", sampleList)
	if got := len(l.Active()); got != 8 {
		t.Errorf("active = %d, want 8", got)
	}
	if got := len(l.Comments()); got != 4 {
		t.Errorf("comments = %d, want 4", got)
	}
	if got := len(l.Invalid()); got != 1 {
		t.Errorf("invalid = %d, want 1", got)
	}
}

func TestDuplicates(t *testing.T) {
	l := ParseListString("sample", sampleList)
	d := l.Duplicates()
	if len(d) != 1 {
		t.Fatalf("duplicates = %v, want 1 entry", d)
	}
	if n := d["@@||pagefair.net^$third-party"]; n != 2 {
		t.Errorf("pagefair dup count = %d, want 2", n)
	}
}

func TestGroups(t *testing.T) {
	l := ParseListString("sample", sampleList)
	groups := l.Groups()
	// Header+sedo comments merge into one group (nothing separates them),
	// then the forum-linked reddit group, then the A6 group (the pagefair
	// filters merge into A6's run since no comment separates them).
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	var a6 *Group
	for _, g := range groups {
		if g.AMarker() == "A6" {
			a6 = g
		}
	}
	if a6 == nil {
		t.Fatal("no A6 group found")
	}
	if a6.ForumLink() != "" {
		t.Errorf("A6 group has forum link %q, want none", a6.ForumLink())
	}
	if len(a6.Filters) != 5 {
		t.Errorf("A6 filters = %d, want 5", len(a6.Filters))
	}

	var reddit *Group
	for _, g := range groups {
		if strings.Contains(g.ForumLink(), "viewtopic") {
			reddit = g
		}
	}
	if reddit == nil {
		t.Fatal("no forum-linked group found")
	}
	if len(reddit.Filters) != 2 {
		t.Errorf("reddit group filters = %d, want 2", len(reddit.Filters))
	}
}

func TestListStringRoundTrip(t *testing.T) {
	l := ParseListString("sample", sampleList)
	l2 := ParseListString("sample", l.String())
	if len(l2.Entries) != len(l.Entries) {
		t.Fatalf("round trip entries %d != %d", len(l2.Entries), len(l.Entries))
	}
	for i := range l.Entries {
		if l.Entries[i].Kind != l2.Entries[i].Kind {
			t.Errorf("entry %d kind %v != %v", i, l.Entries[i].Kind, l2.Entries[i].Kind)
		}
	}
}

func TestExplicitDomains(t *testing.T) {
	l := ParseListString("sample", sampleList)
	domains := ExplicitDomains(l)
	// reddit.com from the $domain option, the three ask hosts from the
	// document-level $elemhide filters' pattern hosts.
	want := []string{"ask.com", "reddit.com", "uk.ask.com", "us.ask.com"}
	if len(domains) != len(want) {
		t.Fatalf("ExplicitDomains = %v, want %v", domains, want)
	}
	for i := range want {
		if domains[i] != want[i] {
			t.Fatalf("ExplicitDomains = %v, want %v", domains, want)
		}
	}
}

func TestRegistrableDomains(t *testing.T) {
	fq := []string{"maps.google.com", "www.google.com", "google.com", "cars.about.com"}
	got := RegistrableDomains(fq)
	want := []string{"about.com", "google.com"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("RegistrableDomains = %v, want %v", got, want)
	}
}

func TestCountScopes(t *testing.T) {
	l := ParseListString("sample", sampleList)
	c := CountScopes(l)
	if c.Sitekey != 1 {
		t.Errorf("sitekey = %d, want 1", c.Sitekey)
	}
	// adzerk/reddit + reddit elemhide exception + the 3 ask $elemhide
	// filters (document-level, pattern-host-scoped).
	if c.Restricted != 5 {
		t.Errorf("restricted = %d, want 5", c.Restricted)
	}
	if c.Unrestricted != 2 { // pagefair ×2 (dup kept)
		t.Errorf("unrestricted = %d, want 2", c.Unrestricted)
	}
	if c.Total() != len(l.Active()) {
		t.Errorf("total = %d, want %d", c.Total(), len(l.Active()))
	}
}

// Property: parsing any line never panics and always yields a non-nil
// filter whose Raw round-trips.
func TestQuickParseTotal(t *testing.T) {
	alphabet := []rune("abc.|@#$^*~,=/!x ")
	prop := func(seed []byte) bool {
		var b strings.Builder
		for _, s := range seed {
			b.WriteRune(alphabet[int(s)%len(alphabet)])
		}
		line := b.String()
		f := Parse(line)
		return f != nil && f.Raw == line
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every active parsed filter belongs to exactly one scope class.
func TestQuickScopeTotal(t *testing.T) {
	lines := []string{
		"||ads.example^", "@@||x.com^$domain=a.com", "@@$sitekey=K,document",
		"a.com##.ad", "#@##influads_block", "@@||adzerk.net/reddit/",
		"@@||pagefair.net^$third-party", "x.com,~y.x.com##div",
	}
	for _, line := range lines {
		f := Parse(line)
		if !f.IsActive() {
			t.Errorf("%q inactive", line)
			continue
		}
		s := ClassifyScope(f)
		if s != ScopeRestricted && s != ScopeUnrestricted && s != ScopeSitekey && s != ScopePatternScoped {
			t.Errorf("%q: unknown scope %v", line, s)
		}
	}
}
