package filter

import (
	"strings"
	"testing"
)

// FuzzParse drives the filter parser with arbitrary lines. Invariants:
// never panic, Raw round-trips, active filters classify into exactly one
// scope, and re-parsing the raw text is idempotent.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"||adzerk.net^$third-party",
		"@@||adzerk.net/reddit/$subdocument,document,domain=reddit.com",
		"reddit.com#@##ad_main",
		"#@##influads_block",
		"@@$sitekey=MFwwDQYJK,document",
		"! comment",
		"[Adblock Plus 2.0]",
		"/banner[0-9]+/",
		"||example.com^$domain=a.com|~b.a.com,script,~image",
		"mnn.com,streamtuner.me###adv",
		"@@||google.com/ads/search/module/ads/*/search.js$domain=suche.golem.de|www.google.com",
		"$$$###@@@|||^^^",
		strings.Repeat("a", 5000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			t.Skip()
		}
		flt := Parse(line)
		if flt == nil {
			t.Fatal("nil filter")
		}
		if flt.Raw != line {
			t.Fatalf("Raw = %q, want %q", flt.Raw, line)
		}
		if flt.IsActive() {
			s := ClassifyScope(flt)
			if s != ScopeRestricted && s != ScopeUnrestricted &&
				s != ScopeSitekey && s != ScopePatternScoped {
				t.Fatalf("bad scope %v for %q", s, line)
			}
			// Idempotence: re-parsing yields the same structure.
			again := Parse(line)
			if again.Kind != flt.Kind || again.Pattern != flt.Pattern ||
				again.Selector != flt.Selector || again.TypeMask != flt.TypeMask {
				t.Fatalf("re-parse differs for %q", line)
			}
		}
	})
}

// FuzzAppliesToDomain checks the domain-restriction logic never panics and
// respects the basic subset property: a filter applying to a subdomain's
// parent domain must also apply to the subdomain unless negated.
func FuzzAppliesToDomain(f *testing.F) {
	f.Add("||x.net^$domain=example.com|~sub.example.com", "a.example.com")
	f.Add("example.com##.ad", "example.com")
	f.Add("~example.com##.ad", "other.org")
	f.Fuzz(func(t *testing.T, line, host string) {
		if strings.ContainsAny(line+host, "\n\r") {
			t.Skip()
		}
		flt := Parse(line)
		if !flt.IsActive() {
			t.Skip()
		}
		_ = flt.AppliesToDomain(host) // must not panic
	})
}
