package filter

import (
	"strings"

	"acceptableads/internal/domainutil"
)

// MaxLength is the length at which Eyeo's tooling erroneously truncated
// filters in Rev. 326 (§8 of the paper). Lines longer than this are rejected
// as invalid, mirroring the hygiene issue the paper reports.
const MaxLength = 4095

// Parse parses one filter list line. It never returns nil: unparseable
// lines yield a *Filter with Kind == KindInvalid and Err set, because the
// paper's hygiene analysis needs to see them.
func Parse(line string) *Filter {
	raw := line
	line = strings.TrimSpace(line)
	f := &Filter{Raw: raw}

	switch {
	case line == "":
		f.Kind = KindComment
		return f
	case strings.HasPrefix(line, "!"):
		f.Kind = KindComment
		f.Text = strings.TrimSpace(line[1:])
		return f
	case strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]"):
		// List header such as "[Adblock Plus 2.0]".
		f.Kind = KindComment
		f.Text = line
		return f
	}

	if len(line) > MaxLength {
		f.Kind = KindInvalid
		f.Text = "filter exceeds maximum length"
		return f
	}

	// Element hiding filters: <domains>#@#<selector> or <domains>##<selector>.
	if sep, pos := findElemHideSeparator(line); pos >= 0 {
		return parseElemHide(f, line, sep, pos)
	}

	return parseRequest(f, line)
}

// findElemHideSeparator locates "#@#" or "##" when the text before it is a
// plausible domain list. It returns the separator and its index, or ("",-1).
func findElemHideSeparator(line string) (string, int) {
	for _, sep := range []string{"#@#", "##"} {
		if i := strings.Index(line, sep); i >= 0 && validDomainPrefix(line[:i]) {
			return sep, i
		}
	}
	return "", -1
}

// validDomainPrefix reports whether s could be an element filter's domain
// list: empty, or comma-separated (possibly "~"-negated) hostnames.
func validDomainPrefix(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == ',', r == '~', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

func parseElemHide(f *Filter, line, sep string, pos int) *Filter {
	if sep == "#@#" {
		f.Kind = KindElemHideException
	} else {
		f.Kind = KindElemHide
	}
	f.Selector = line[pos+len(sep):]
	if f.Selector == "" {
		f.Kind = KindInvalid
		f.Text = "element filter with empty selector"
		return f
	}
	prefix := line[:pos]
	if prefix != "" {
		for _, d := range strings.Split(prefix, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			spec := DomainSpec{}
			if strings.HasPrefix(d, "~") {
				spec.Negated = true
				d = d[1:]
			}
			spec.Domain = domainutil.Normalize(d)
			if spec.Domain == "" {
				f.Kind = KindInvalid
				f.Text = "element filter with empty domain entry"
				return f
			}
			f.Domains = append(f.Domains, spec)
		}
	}
	return f
}

func parseRequest(f *Filter, line string) *Filter {
	f.Kind = KindRequestBlock
	if strings.HasPrefix(line, "@@") {
		f.Kind = KindRequestException
		line = line[2:]
	}

	// Split off the option list. Raw regular expression filters
	// (/.../ with no $) take the whole text as pattern.
	pattern := line
	var options string
	if i := findOptionsSeparator(line); i >= 0 {
		pattern = line[:i]
		options = line[i+1:]
	}

	if strings.HasPrefix(pattern, "/") && strings.HasSuffix(pattern, "/") && len(pattern) > 1 {
		f.IsRegex = true
		f.Pattern = pattern[1 : len(pattern)-1]
	} else {
		// Anchor modifiers.
		if strings.HasPrefix(pattern, "||") {
			f.AnchorDomain = true
			pattern = pattern[2:]
		} else if strings.HasPrefix(pattern, "|") {
			f.AnchorStart = true
			pattern = pattern[1:]
		}
		if strings.HasSuffix(pattern, "|") {
			f.AnchorEnd = true
			pattern = pattern[:len(pattern)-1]
		}
		f.Pattern = pattern
	}

	f.TypeMask = DefaultTypes
	if options != "" {
		if ok := applyOptions(f, options); !ok {
			return f // applyOptions set KindInvalid.
		}
	}

	// A request filter needs either a pattern or a restricting option;
	// "@@$sitekey=...,document" is the sitekey form with empty pattern.
	if f.Pattern == "" && !f.IsRegex && len(f.Sitekeys) == 0 && len(f.Domains) == 0 {
		f.Kind = KindInvalid
		f.Text = "empty filter"
	}
	return f
}

// findOptionsSeparator returns the index of the "$" introducing the option
// list, or -1. Following Adblock Plus it looks for the last "$" whose
// remainder parses as an option list, so "$" characters inside URL patterns
// do not confuse it.
func findOptionsSeparator(line string) int {
	for i := len(line) - 1; i >= 0; i-- {
		if line[i] != '$' {
			continue
		}
		if looksLikeOptions(line[i+1:]) {
			return i
		}
	}
	return -1
}

// looksLikeOptions reports whether s has the *shape* of an option list:
// comma-separated, optionally "~"-negated words with optional "=value"
// parts. Adblock Plus splits on shape and only afterwards rejects unknown
// option names, which is how malformed options make a filter invalid rather
// than silently becoming pattern text.
func looksLikeOptions(s string) bool {
	if s == "" {
		return false
	}
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimSpace(opt)
		opt = strings.TrimPrefix(opt, "~")
		name := opt
		if eq := strings.IndexByte(opt, '='); eq >= 0 {
			name = opt[:eq]
		}
		if name == "" {
			return false
		}
		for _, r := range name {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			default:
				return false
			}
		}
	}
	return true
}

// applyOptions parses a comma-separated option list into f. It returns
// false (with f marked invalid) for malformed constructs such as negated
// non-negatable options.
func applyOptions(f *Filter, options string) bool {
	var include, exclude ContentType
	for _, opt := range strings.Split(options, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			f.Kind = KindInvalid
			f.Text = "empty option"
			return false
		}
		negated := strings.HasPrefix(opt, "~")
		if negated {
			opt = opt[1:]
		}
		var value string
		if eq := strings.IndexByte(opt, '='); eq >= 0 {
			value = opt[eq+1:]
			opt = opt[:eq]
		}
		opt = strings.ToLower(opt)

		if t, ok := ParseContentType(opt); ok {
			if negated {
				exclude |= t
			} else {
				include |= t
			}
			continue
		}
		switch opt {
		case "third-party":
			if negated {
				f.ThirdParty = No
			} else {
				f.ThirdParty = Yes
			}
		case "collapse":
			if negated {
				f.Collapse = No
			} else {
				f.Collapse = Yes
			}
		case "match-case":
			if negated {
				f.Kind = KindInvalid
				f.Text = "match-case cannot be negated"
				return false
			}
			f.MatchCase = true
		case "donottrack":
			if negated {
				f.Kind = KindInvalid
				f.Text = "donottrack cannot be negated"
				return false
			}
			f.DoNotTrack = true
		case "domain":
			if value == "" {
				f.Kind = KindInvalid
				f.Text = "domain option without value"
				return false
			}
			for _, d := range strings.Split(value, "|") {
				d = strings.TrimSpace(d)
				if d == "" {
					continue
				}
				spec := DomainSpec{}
				if strings.HasPrefix(d, "~") {
					spec.Negated = true
					d = d[1:]
				}
				spec.Domain = domainutil.Normalize(d)
				f.Domains = append(f.Domains, spec)
			}
		case "sitekey":
			if negated {
				f.Kind = KindInvalid
				f.Text = "sitekey cannot be negated"
				return false
			}
			if value == "" {
				f.Kind = KindInvalid
				f.Text = "sitekey option without value"
				return false
			}
			for _, k := range strings.Split(value, "|") {
				if k = strings.TrimSpace(k); k != "" {
					f.Sitekeys = append(f.Sitekeys, k)
				}
			}
		default:
			f.Kind = KindInvalid
			f.Text = "unknown option: " + opt
			return false
		}
	}

	switch {
	case include != 0:
		f.TypeMask = include &^ exclude
	case exclude != 0:
		f.TypeMask = DefaultTypes &^ exclude
	}
	return true
}

// AppliesToDomain reports whether the filter's domain restrictions permit
// activation on a page hosted at docHost. A filter with no positive domain
// entries applies everywhere not explicitly negated; with positive entries
// it applies only on those domains (and their subdomains), unless a more
// specific negated entry overrides.
func (f *Filter) AppliesToDomain(docHost string) bool {
	if len(f.Domains) == 0 {
		return true
	}
	docHost = domainutil.Normalize(docHost)
	bestLen, bestNegated := -1, false
	hasPositive := false
	for _, d := range f.Domains {
		if !d.Negated {
			hasPositive = true
		}
		if domainutil.IsSubdomainOf(docHost, d.Domain) && len(d.Domain) > bestLen {
			bestLen = len(d.Domain)
			bestNegated = d.Negated
		}
	}
	if bestLen >= 0 {
		return !bestNegated
	}
	return !hasPositive
}
