// Package filter implements the Adblock Plus filter syntax described in
// Appendix A of the paper: blocking and exception request filters, element
// hiding and element hiding exception filters, sitekey filters, filter
// options, and comment/metadata lines.
//
// The package is purely syntactic: it parses filter list text into a typed
// representation and classifies filter scope. Matching semantics (deciding
// whether a request or element activates a filter) live in internal/engine.
package filter

import "strings"

// Kind identifies the grammatical class of a parsed line.
type Kind uint8

const (
	// KindInvalid marks a line that failed to parse as any filter form.
	// The paper's hygiene analysis (§8) counts such lines — e.g. the 8
	// exception filters erroneously truncated at 4095 characters.
	KindInvalid Kind = iota
	// KindComment is a "!"-prefixed comment or a "[Adblock Plus x.y]"
	// list header.
	KindComment
	// KindRequestBlock blocks matching web requests.
	KindRequestBlock
	// KindRequestException ("@@" prefix) overrides blocking filters to
	// allow matching web requests. Sitekey filters are request exceptions
	// whose option list carries one or more sitekeys.
	KindRequestException
	// KindElemHide ("##") hides page elements matching a CSS selector.
	KindElemHide
	// KindElemHideException ("#@#") cancels element hiding filters.
	KindElemHideException
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindComment:
		return "comment"
	case KindRequestBlock:
		return "block"
	case KindRequestException:
		return "exception"
	case KindElemHide:
		return "elemhide"
	case KindElemHideException:
		return "elemhide-exception"
	default:
		return "invalid"
	}
}

// ContentType is a bit mask of the request content types a filter applies
// to, set via filter options such as $script or $image.
type ContentType uint32

const (
	TypeScript ContentType = 1 << iota
	TypeImage
	TypeStylesheet
	TypeObject
	TypeXMLHTTPRequest
	TypeObjectSubrequest
	TypeSubdocument
	TypeDocument
	TypeElemHide
	TypeOther
	// Deprecated options kept for backwards compatibility with old lists.
	TypeBackground
	TypeXBL
	TypePing
	TypeDTD
)

// DefaultTypes is the content-type mask applied when a filter names no type
// options. Following Adblock Plus, $document and $elemhide never apply
// implicitly: they must be requested explicitly and only have meaning on
// exception filters.
const DefaultTypes = TypeScript | TypeImage | TypeStylesheet | TypeObject |
	TypeXMLHTTPRequest | TypeObjectSubrequest | TypeSubdocument | TypeOther |
	TypeBackground | TypeXBL | TypePing | TypeDTD

var typeNames = []struct {
	t    ContentType
	name string
}{
	{TypeScript, "script"},
	{TypeImage, "image"},
	{TypeStylesheet, "stylesheet"},
	{TypeObject, "object"},
	{TypeXMLHTTPRequest, "xmlhttprequest"},
	{TypeObjectSubrequest, "object-subrequest"},
	{TypeSubdocument, "subdocument"},
	{TypeDocument, "document"},
	{TypeElemHide, "elemhide"},
	{TypeOther, "other"},
	{TypeBackground, "background"},
	{TypeXBL, "xbl"},
	{TypePing, "ping"},
	{TypeDTD, "dtd"},
}

// ParseContentType maps an option name like "script" to its ContentType
// bit. The boolean result is false for unknown names.
func ParseContentType(name string) (ContentType, bool) {
	for _, tn := range typeNames {
		if tn.name == name {
			return tn.t, true
		}
	}
	return 0, false
}

// String renders the mask as a comma-separated list of option names.
func (c ContentType) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	for _, tn := range typeNames {
		if c&tn.t != 0 {
			parts = append(parts, tn.name)
		}
	}
	return strings.Join(parts, ",")
}

// TriState represents a filter option that may be required, forbidden, or
// unconstrained — e.g. $third-party vs $~third-party vs absent.
type TriState int8

const (
	// Unset leaves the property unconstrained.
	Unset TriState = iota
	// Yes requires the property (e.g. $third-party).
	Yes
	// No forbids the property (e.g. $~third-party).
	No
)

// DomainSpec is one entry of a $domain= option list or an element hiding
// filter's domain prefix. Negated entries carry the "~" prefix.
type DomainSpec struct {
	Domain  string
	Negated bool
}

// Filter is one parsed filter list line.
//
// For request filters, Pattern holds the matching expression with the
// anchor modifiers already stripped into AnchorDomain/AnchorStart/AnchorEnd.
// For element filters, Selector holds the CSS selector and Domains the
// domain prefix. For comments, Text holds the comment body without the
// leading "!".
// Field order groups the pointer-sized members first and packs every
// single-byte flag into one trailing island: a parsed corpus lives in
// one slab (~30k cells for EasyList), so each byte of padding here is
// multiplied by the filter count.
type Filter struct {
	// Raw is the original line exactly as it appeared in the list.
	Raw string
	// Pattern is the request matching expression (modifiers stripped).
	Pattern string
	// Domains lists $domain= entries (request filters) or the domain
	// prefix (element filters).
	Domains []DomainSpec
	// Sitekeys lists $sitekey= public keys (base64 DER).
	Sitekeys []string
	// Selector is the element filter's CSS selector.
	Selector string
	// Text is the body of a comment line or, on a KindInvalid filter, the
	// reason parsing failed. The two kinds are disjoint, so one field
	// serves both — a 16-byte header saved across every slab-allocated
	// corpus.
	Text string

	// TypeMask is the effective content-type mask after option defaults
	// and negations are applied.
	TypeMask ContentType

	// Kind is the grammatical class.
	Kind Kind
	// IsRegex marks /.../-delimited raw regular expression patterns.
	IsRegex bool
	// AnchorDomain marks a "||" prefix: the pattern must match at the
	// start of a hostname (or a dot boundary inside it).
	AnchorDomain bool
	// AnchorStart marks a leading "|": the pattern must match at the
	// very start of the URL.
	AnchorStart bool
	// AnchorEnd marks a trailing "|": the pattern must match at the very
	// end of the URL.
	AnchorEnd bool
	// ThirdParty constrains the request's party relation to the page.
	ThirdParty TriState
	// Collapse requests that blocked elements be collapsed; negatable.
	Collapse TriState
	// MatchCase makes pattern matching case-sensitive.
	MatchCase bool
	// DoNotTrack asks for a DNT header on matching requests.
	DoNotTrack bool
}

// IsException reports whether the filter allows rather than blocks content.
func (f *Filter) IsException() bool {
	return f.Kind == KindRequestException || f.Kind == KindElemHideException
}

// IsActive reports whether the filter participates in matching (i.e. is not
// a comment or an invalid line).
func (f *Filter) IsActive() bool {
	switch f.Kind {
	case KindRequestBlock, KindRequestException, KindElemHide, KindElemHideException:
		return true
	}
	return false
}

// IsSitekey reports whether the filter is a sitekey exception: a request
// exception restricted by one or more $sitekey= public keys.
func (f *Filter) IsSitekey() bool {
	return f.Kind == KindRequestException && len(f.Sitekeys) > 0
}

// HasPositiveDomains reports whether the filter names at least one
// non-negated domain, the criterion for the paper's "restricted" class.
func (f *Filter) HasPositiveDomains() bool {
	for _, d := range f.Domains {
		if !d.Negated {
			return true
		}
	}
	return false
}

// PositiveDomains returns the non-negated domains the filter is explicitly
// restricted to. These are the "explicitly listed publisher domains" the
// paper extracts for Table 2.
func (f *Filter) PositiveDomains() []string {
	var out []string
	for _, d := range f.Domains {
		if !d.Negated {
			out = append(out, d.Domain)
		}
	}
	return out
}

// IsDocumentLevel reports whether the filter only grants page-level
// allowances: its type mask is confined to $document and/or $elemhide.
func (f *Filter) IsDocumentLevel() bool {
	docTypes := TypeDocument | TypeElemHide
	return f.TypeMask != 0 && f.TypeMask&^docTypes == 0
}

// PatternHost returns the hostname a domain-anchored ("||") pattern pins,
// or "". The host is the pattern prefix up to the first '/', '^', '*' or
// '|'; it must contain a dot and only hostname characters. For
// "@@||us.ask.com^$elemhide" this is "us.ask.com".
func (f *Filter) PatternHost() string {
	if f.IsRegex || !f.AnchorDomain {
		return ""
	}
	end := len(f.Pattern)
	for i := 0; i < len(f.Pattern); i++ {
		switch f.Pattern[i] {
		case '/', '^', '*', '|', '?':
			end = i
		}
		if end != len(f.Pattern) {
			break
		}
	}
	host := f.Pattern[:end]
	if !strings.Contains(host, ".") {
		return ""
	}
	for i := 0; i < len(host); i++ {
		c := host[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '-':
		default:
			return ""
		}
	}
	return strings.ToLower(host)
}

// String returns the canonical text form of the filter. For parsed lines
// this is the original raw text.
func (f *Filter) String() string { return f.Raw }
