// Package strtab provides a flat string column: one concatenated byte
// blob plus a table of end offsets. A column of n strings costs two
// allocations to build and — when both slices arrive as views into a
// decoded buffer — zero allocations to read, which is why the engine's
// arena columns and the snapbin codec trade []string for it: a []string
// materializes a 16-byte header per entry that becomes garbage the
// moment the entries are copied into their final structs.
package strtab

import (
	"fmt"
	"unsafe"
)

// Col is a string column. Entry i spans Blob[Off[i]:Off[i+1]]; a
// non-empty column carries len+1 offsets with Off[0] == 0. The zero Col
// is an empty column ready for Append.
//
// Off and Blob are exported so codecs can serialize them in bulk and
// install decoded views in place. A Col built from untrusted bytes must
// pass Validate before At is called.
type Col struct {
	Off  []uint32
	Blob []byte
}

// Len reports the number of entries.
func (c *Col) Len() int {
	if len(c.Off) == 0 {
		return 0
	}
	return len(c.Off) - 1
}

// Append adds s as the next entry.
func (c *Col) Append(s string) {
	if len(c.Off) == 0 {
		c.Off = append(c.Off, 0)
	}
	c.Blob = append(c.Blob, s...)
	c.Off = append(c.Off, uint32(len(c.Blob)))
}

// Grow pre-sizes the column for n more entries totalling about blobLen
// bytes.
func (c *Col) Grow(n, blobLen int) {
	if len(c.Off) == 0 {
		c.Off = make([]uint32, 1, n+1)
	}
	if cap(c.Blob)-len(c.Blob) < blobLen {
		grown := make([]byte, len(c.Blob), len(c.Blob)+blobLen)
		copy(grown, c.Blob)
		c.Blob = grown
	}
}

// At returns entry i without copying: the string aliases Blob, so the
// blob must not be modified while the string is live. The offsets are
// not re-checked here — Validate bounds them once for the whole column.
func (c *Col) At(i int) string {
	lo, hi := c.Off[i], c.Off[i+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&c.Blob[lo], hi-lo)
}

// Validate checks the offset table — present, starting at zero,
// non-decreasing, ending exactly at the blob's length — so that At can
// never slice out of range. Codecs run it once per decoded column.
func (c *Col) Validate() error {
	if len(c.Off) == 0 {
		if len(c.Blob) != 0 {
			return fmt.Errorf("strtab: %d blob bytes with no offset table", len(c.Blob))
		}
		return nil
	}
	last := len(c.Off) - 1
	if c.Off[0] != 0 || int(c.Off[last]) != len(c.Blob) {
		return fmt.Errorf("strtab: offsets span [%d..%d], want [0..%d]", c.Off[0], c.Off[last], len(c.Blob))
	}
	for i := 0; i < last; i++ {
		if c.Off[i] > c.Off[i+1] {
			return fmt.Errorf("strtab: offsets decrease at entry %d", i)
		}
	}
	return nil
}
