// Package browser is the instrumented headless browser of §5: it loads a
// page over HTTP (cookies, redirects, User-Agent all live), verifies any
// sitekey the server presents, consults the Adblock Plus engine for the
// page-level allowances, replays every sub-resource request and DOM
// element through the engine, records all filter activations, and fetches
// the resources the engine allows — the Selenium-plus-instrumented-ABP
// setup of the paper, minus the real Firefox.
package browser

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"strings"
	"time"

	"acceptableads/internal/domainutil"
	"acceptableads/internal/engine"
	"acceptableads/internal/htmldom"
	"acceptableads/internal/obs"
	"acceptableads/internal/sitekey"
)

// DefaultUserAgent mimics a 2015 Firefox, the browser the paper drove.
const DefaultUserAgent = "Mozilla/5.0 (X11; Linux x86_64; rv:37.0) Gecko/20100101 Firefox/37.0"

// maxBody bounds how much of a response the browser reads.
const maxBody = 4 << 20

// Browser drives page loads through an engine. Each Visit records through
// a private engine session, so multiple Browsers may share one engine and
// a single Browser may run concurrent Visits (the cookie jar is
// thread-safe); only the exported configuration fields must not be
// mutated mid-crawl.
type Browser struct {
	client *http.Client
	engine *engine.Engine
	// UserAgent is sent on every request and bound into sitekey
	// signatures.
	UserAgent string
	// FetchResources controls whether allowed sub-resources are actually
	// downloaded (the survey counts matches either way; fetching
	// exercises the full network path).
	FetchResources bool
	// AnnounceAdblock sends the X-Simulated-Adblock header, standing in
	// for the script-based ad-block detection some sites (imgur) run.
	AnnounceAdblock bool

	// metrics is the optional telemetry hook; nil (the default) records
	// nothing. See SetObs.
	metrics *browserMetrics
}

// browserMetrics pre-resolves the browser's instruments.
type browserMetrics struct {
	pages    *obs.Counter
	pageLat  *obs.Histogram
	requests *obs.Counter
	blocked  *obs.Counter
	fetched  *obs.Counter
	bytes    *obs.Counter
}

// SetObs wires page-load telemetry into reg; nil disables it. Like the
// other configuration fields, set it before the crawl starts.
func (b *Browser) SetObs(reg *obs.Registry) {
	if reg == nil {
		b.metrics = nil
		return
	}
	b.metrics = &browserMetrics{
		pages:    reg.Counter("browser.pages"),
		pageLat:  reg.Histogram("browser.page.latency"),
		requests: reg.Counter("browser.requests"),
		blocked:  reg.Counter("browser.blocked"),
		fetched:  reg.Counter("browser.fetched"),
		bytes:    reg.Counter("browser.bytes"),
	}
}

// New wraps an HTTP client (typically webserver.Client) with a fresh
// cookie jar and the filter engine. eng may be nil for a record-nothing
// crawler (the parked-domain prober).
func New(client *http.Client, eng *engine.Engine, userAgent string) (*Browser, error) {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, fmt.Errorf("browser: cookie jar: %w", err)
	}
	c := *client
	c.Jar = jar
	if userAgent == "" {
		userAgent = DefaultUserAgent
	}
	return &Browser{
		client:          &c,
		engine:          eng,
		UserAgent:       userAgent,
		FetchResources:  true,
		AnnounceAdblock: true,
	}, nil
}

// Visit is the result of one page load.
type Visit struct {
	// URL is the requested URL; FinalURL the one after redirects.
	URL, FinalURL string
	// Status is the final HTTP status code.
	Status int
	// SitekeyB64 is the verified base64 sitekey the server presented, "".
	SitekeyB64 string
	// Flags are the page-level allowances the engine granted.
	Flags engine.PageFlags
	// Activations are all recorded filter firings, in order.
	Activations []engine.Activation
	// Requests is the number of sub-resource requests the page issued.
	Requests int
	// BlockedRequests counts requests the engine cancelled.
	BlockedRequests int
	// FetchedRequests counts allowed requests actually downloaded.
	FetchedRequests int
	// DOM is the parsed landing page.
	DOM *htmldom.Node
	// Hidden lists element-hiding decisions.
	Hidden []engine.ElementMatch
}

// Get performs a plain instrumented GET without filter evaluation,
// returning the final response and body. The parked-domain prober uses it.
func (b *Browser) Get(url string) (*http.Response, []byte, error) {
	return b.get(url, false)
}

func (b *Browser) get(url string, dnt bool) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("browser: %w", err)
	}
	req.Header.Set("User-Agent", b.UserAgent)
	if b.AnnounceAdblock {
		req.Header.Set("X-Simulated-Adblock", "1")
	}
	if dnt {
		req.Header.Set("DNT", "1")
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("browser: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, nil, fmt.Errorf("browser: read %s: %w", url, err)
	}
	if m := b.metrics; m != nil {
		m.bytes.Add(int64(len(body)))
	}
	return resp, body, nil
}

// Visit loads a page and runs the full instrumented pipeline.
func (b *Browser) Visit(url string) (*Visit, error) {
	var start time.Time
	if b.metrics != nil {
		start = time.Now()
	}
	resp, body, err := b.Get(url)
	if err != nil {
		return nil, err
	}
	v := &Visit{
		URL:      url,
		FinalURL: resp.Request.URL.String(),
		Status:   resp.StatusCode,
	}
	v.DOM = htmldom.Parse(string(body))
	if b.engine == nil {
		if m := b.metrics; m != nil {
			m.pages.Inc()
			m.pageLat.Observe(time.Since(start))
		}
		return v, nil
	}

	// Record every activation of this visit through a private session,
	// so browsers sharing one engine can crawl concurrently.
	sess := b.engine.NewSession(engine.RecorderFunc(func(a engine.Activation) {
		v.Activations = append(v.Activations, a)
	}))

	// Sitekey verification: the X-Adblock-key header first, then the
	// data-adblockkey attribute of the root element.
	host := domainutil.HostOf(v.FinalURL)
	uri := resp.Request.URL.RequestURI()
	if header := resp.Header.Get("X-Adblock-key"); header != "" {
		if key, err := sitekey.VerifyHeader(header, uri, host, b.UserAgent); err == nil {
			v.SitekeyB64 = key
		}
	}
	if v.SitekeyB64 == "" {
		if attr := htmlAdblockKey(v.DOM); attr != "" {
			if key, err := sitekey.VerifyHeader(attr, uri, host, b.UserAgent); err == nil {
				v.SitekeyB64 = key
			}
		}
	}

	v.Flags = sess.PagePermissions(v.FinalURL, v.SitekeyB64)

	// Sub-resource requests.
	for _, res := range htmldom.ExtractResources(v.DOM, v.FinalURL) {
		if strings.HasPrefix(res.URL, "data:") {
			continue
		}
		v.Requests++
		allowed, dnt := true, false
		if !v.Flags.DocumentAllowed {
			d := sess.MatchRequest(&engine.Request{
				URL:          res.URL,
				Type:         res.Type,
				DocumentHost: host,
			})
			if d.Verdict == engine.Blocked {
				allowed = false
				v.BlockedRequests++
			}
			dnt = d.DoNotTrack
		}
		if allowed && b.FetchResources {
			if _, _, err := b.get(res.URL, dnt); err == nil {
				v.FetchedRequests++
			}
		}
	}

	// Element hiding, unless a page-level allowance disabled it.
	if !v.Flags.DocumentAllowed && !v.Flags.ElemHideDisabled {
		v.Hidden = sess.HideElements(v.DOM, v.FinalURL, host)
	}
	if m := b.metrics; m != nil {
		m.pages.Inc()
		m.pageLat.Observe(time.Since(start))
		m.requests.Add(int64(v.Requests))
		m.blocked.Add(int64(v.BlockedRequests))
		m.fetched.Add(int64(v.FetchedRequests))
	}
	return v, nil
}

// htmlAdblockKey extracts the data-adblockkey attribute from the document's
// root html element.
func htmlAdblockKey(doc *htmldom.Node) string {
	for _, n := range doc.Children {
		if n.Tag == "html" {
			if v, ok := n.Attr("data-adblockkey"); ok {
				return v
			}
		}
	}
	return ""
}
