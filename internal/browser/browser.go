// Package browser is the instrumented headless browser of §5: it loads a
// page over HTTP (cookies, redirects, User-Agent all live), verifies any
// sitekey the server presents, consults the Adblock Plus engine for the
// page-level allowances, replays every sub-resource request and DOM
// element through the engine, records all filter activations, and fetches
// the resources the engine allows — the Selenium-plus-instrumented-ABP
// setup of the paper, minus the real Firefox.
//
// Visits are deadline- and budget-bounded: PageTimeout caps one page load
// end to end, MaxRedirects bounds every redirect chain hop-by-hop (each
// hop's body capped at maxBody — a hostile chain cannot stream unbounded
// bytes through intermediate responses), and MaxTotalBytes is a per-visit
// download budget across the landing page and all fetched sub-resources.
package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"strings"
	"time"

	"acceptableads/internal/domainutil"
	"acceptableads/internal/engine"
	"acceptableads/internal/htmldom"
	"acceptableads/internal/obs"
	"acceptableads/internal/retry"
	"acceptableads/internal/sitekey"
)

// DefaultUserAgent mimics a 2015 Firefox, the browser the paper drove.
const DefaultUserAgent = "Mozilla/5.0 (X11; Linux x86_64; rv:37.0) Gecko/20100101 Firefox/37.0"

// maxBody bounds how much of any single response — final or intermediate
// redirect hop — the browser reads.
const maxBody = 4 << 20

// DefaultMaxRedirects bounds a request's redirect chain when
// Browser.MaxRedirects is 0 (net/http's historical default).
const DefaultMaxRedirects = 10

// DefaultMaxTotalBytes is the per-visit download budget when
// Browser.MaxTotalBytes is 0.
const DefaultMaxTotalBytes = 16 << 20

// ErrBodyBudget reports that a visit's total-bytes budget is exhausted;
// remaining sub-resource fetches are skipped, not failed.
var ErrBodyBudget = errors.New("browser: page byte budget exhausted")

// Browser drives page loads through an engine. Each Visit records through
// a private engine session, so multiple Browsers may share one engine and
// a single Browser may run concurrent Visits (the cookie jar is
// thread-safe); only the exported configuration fields must not be
// mutated mid-crawl.
type Browser struct {
	client *http.Client
	engine *engine.Engine
	// UserAgent is sent on every request and bound into sitekey
	// signatures.
	UserAgent string
	// FetchResources controls whether allowed sub-resources are actually
	// downloaded (the survey counts matches either way; fetching
	// exercises the full network path).
	FetchResources bool
	// AnnounceAdblock sends the X-Simulated-Adblock header, standing in
	// for the script-based ad-block detection some sites (imgur) run.
	AnnounceAdblock bool
	// PageTimeout bounds one Visit/Get end to end (landing page,
	// redirects and sub-resource fetches); 0 leaves only the client's
	// own timeout.
	PageTimeout time.Duration
	// MaxRedirects bounds each request's redirect chain; 0 means
	// DefaultMaxRedirects.
	MaxRedirects int
	// MaxTotalBytes is the per-visit download budget across all hops and
	// sub-resources; 0 means DefaultMaxTotalBytes.
	MaxTotalBytes int64
	// Breaker, when non-nil, gates sub-resource fetches per host:
	// repeatedly failing resource hosts are skipped, not hammered.
	Breaker *retry.Breaker
	// DiffViews, when both are non-nil, additionally evaluates every
	// sub-resource request differentially under the two profile views
	// (engine.Diff, one index pass) and counts verdict flips on the
	// Visit. Both views must be over the same engine the browser matches
	// with. The page's blocking behavior is unchanged — the diff is
	// measurement only.
	DiffViews [2]*engine.View

	// metrics is the optional telemetry hook; nil (the default) records
	// nothing. See SetObs.
	metrics *browserMetrics
}

// browserMetrics pre-resolves the browser's instruments.
type browserMetrics struct {
	pages     *obs.Counter
	pageLat   *obs.Histogram
	requests  *obs.Counter
	blocked   *obs.Counter
	fetched   *obs.Counter
	bytes     *obs.Counter
	redirects *obs.Counter
}

// SetObs wires page-load telemetry into reg; nil disables it. Like the
// other configuration fields, set it before the crawl starts.
func (b *Browser) SetObs(reg *obs.Registry) {
	if reg == nil {
		b.metrics = nil
		return
	}
	b.metrics = &browserMetrics{
		pages:     reg.Counter("browser.pages"),
		pageLat:   reg.Histogram("browser.page.latency"),
		requests:  reg.Counter("browser.requests"),
		blocked:   reg.Counter("browser.blocked"),
		fetched:   reg.Counter("browser.fetched"),
		bytes:     reg.Counter("browser.bytes"),
		redirects: reg.Counter("browser.redirects"),
	}
}

// New wraps an HTTP client (typically webserver.Client) with a fresh
// cookie jar and the filter engine. eng may be nil for a record-nothing
// crawler (the parked-domain prober). The browser follows redirects
// itself — hop by hop, each hop's body capped — so the client's own
// redirect policy is overridden.
func New(client *http.Client, eng *engine.Engine, userAgent string) (*Browser, error) {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, fmt.Errorf("browser: cookie jar: %w", err)
	}
	c := *client
	c.Jar = jar
	c.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}
	if userAgent == "" {
		userAgent = DefaultUserAgent
	}
	return &Browser{
		client:          &c,
		engine:          eng,
		UserAgent:       userAgent,
		FetchResources:  true,
		AnnounceAdblock: true,
	}, nil
}

// Visit is the result of one page load.
type Visit struct {
	// URL is the requested URL; FinalURL the one after redirects.
	URL, FinalURL string
	// Status is the final HTTP status code.
	Status int
	// Redirects is the length of the landing page's redirect chain.
	Redirects int
	// SitekeyB64 is the verified base64 sitekey the server presented, "".
	SitekeyB64 string
	// Flags are the page-level allowances the engine granted.
	Flags engine.PageFlags
	// Activations are all recorded filter firings, in order.
	Activations []engine.Activation
	// Requests is the number of sub-resource requests the page issued.
	Requests int
	// BlockedRequests counts requests the engine cancelled.
	BlockedRequests int
	// FetchedRequests counts allowed requests actually downloaded.
	FetchedRequests int
	// DiffFlipped counts sub-resource requests whose verdict differed
	// between the browser's two DiffViews (0 when DiffViews is unset) —
	// e.g. blocked under EasyList alone, allowed with the Acceptable Ads
	// exceptions in scope.
	DiffFlipped int
	// DOM is the parsed landing page.
	DOM *htmldom.Node
	// Hidden lists element-hiding decisions.
	Hidden []engine.ElementMatch
}

// pageCtx applies the per-page deadline, if any.
func (b *Browser) pageCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if b.PageTimeout > 0 {
		return context.WithTimeout(ctx, b.PageTimeout)
	}
	return ctx, func() {}
}

// budget returns the visit's fresh byte budget.
func (b *Browser) budget() int64 {
	if b.MaxTotalBytes > 0 {
		return b.MaxTotalBytes
	}
	return DefaultMaxTotalBytes
}

// Get performs a plain instrumented GET without filter evaluation,
// returning the final response and body. The parked-domain prober uses it.
func (b *Browser) Get(url string) (*http.Response, []byte, error) {
	return b.GetContext(context.Background(), url)
}

// GetContext is Get under a caller context (plus the browser's
// PageTimeout, when set).
func (b *Browser) GetContext(ctx context.Context, url string) (*http.Response, []byte, error) {
	ctx, cancel := b.pageCtx(ctx)
	defer cancel()
	budget := b.budget()
	resp, body, _, err := b.get(ctx, url, false, &budget)
	return resp, body, err
}

// get performs one instrumented GET, following redirects hop by hop: each
// hop's body is drained under the maxBody cap and charged to the visit
// budget, and the chain is bounded by MaxRedirects. It returns the final
// response, its body, and the chain length.
func (b *Browser) get(ctx context.Context, rawURL string, dnt bool, budget *int64) (*http.Response, []byte, int, error) {
	maxRed := b.MaxRedirects
	if maxRed <= 0 {
		maxRed = DefaultMaxRedirects
	}
	urlStr := rawURL
	for hop := 0; ; hop++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, urlStr, nil)
		if err != nil {
			return nil, nil, hop, fmt.Errorf("browser: %w", err)
		}
		req.Header.Set("User-Agent", b.UserAgent)
		if b.AnnounceAdblock {
			req.Header.Set("X-Simulated-Adblock", "1")
		}
		if dnt {
			req.Header.Set("DNT", "1")
		}
		resp, err := b.client.Do(req)
		if err != nil {
			return nil, nil, hop, fmt.Errorf("browser: get %s: %w", urlStr, err)
		}
		if loc := redirectTarget(resp); loc != "" {
			b.drain(resp, budget)
			if m := b.metrics; m != nil {
				m.redirects.Inc()
			}
			if hop+1 > maxRed {
				return nil, nil, hop + 1, fmt.Errorf("browser: get %s: %d redirects: %w",
					rawURL, hop+1, retry.ErrTooManyRedirects)
			}
			urlStr = loc
			continue
		}
		body, err := b.readBody(resp, budget)
		resp.Body.Close()
		if err != nil {
			return nil, nil, hop, fmt.Errorf("browser: read %s: %w", urlStr, err)
		}
		return resp, body, hop, nil
	}
}

// redirectTarget returns the resolved Location of a redirect response,
// or "" when the response is final.
func redirectTarget(resp *http.Response) string {
	switch resp.StatusCode {
	case http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther,
		http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		if u, err := resp.Location(); err == nil {
			return u.String()
		}
	}
	return ""
}

// readBody reads a response body under the per-response cap and the
// visit budget, charging what it read.
func (b *Browser) readBody(resp *http.Response, budget *int64) ([]byte, error) {
	limit := int64(maxBody)
	if budget != nil {
		if *budget <= 0 {
			return nil, ErrBodyBudget
		}
		if *budget < limit {
			limit = *budget
		}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if budget != nil {
		*budget -= int64(len(body))
	}
	if m := b.metrics; m != nil {
		m.bytes.Add(int64(len(body)))
	}
	return body, err
}

// drain discards an intermediate hop's body under the same caps as
// readBody, so redirect chains cannot smuggle unbounded bytes.
func (b *Browser) drain(resp *http.Response, budget *int64) {
	n, _ := io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	if budget != nil {
		*budget -= n
	}
	if m := b.metrics; m != nil {
		m.bytes.Add(n)
	}
}

// Visit loads a page and runs the full instrumented pipeline.
func (b *Browser) Visit(url string) (*Visit, error) {
	return b.VisitContext(context.Background(), url)
}

// VisitContext is Visit under a caller context: the page load, its
// redirects and every sub-resource fetch observe ctx plus the browser's
// PageTimeout, and share one MaxTotalBytes download budget.
func (b *Browser) VisitContext(ctx context.Context, url string) (*Visit, error) {
	var start time.Time
	if b.metrics != nil {
		start = time.Now()
	}
	ctx, cancel := b.pageCtx(ctx)
	defer cancel()
	budget := b.budget()
	resp, body, hops, err := b.get(ctx, url, false, &budget)
	if err != nil {
		return nil, err
	}
	v := &Visit{
		URL:       url,
		FinalURL:  resp.Request.URL.String(),
		Status:    resp.StatusCode,
		Redirects: hops,
	}
	v.DOM = htmldom.Parse(string(body))
	if b.engine == nil {
		if m := b.metrics; m != nil {
			m.pages.Inc()
			m.pageLat.Observe(time.Since(start))
		}
		return v, nil
	}

	// Record every activation of this visit through a private session,
	// so browsers sharing one engine can crawl concurrently.
	sess := b.engine.NewSession(engine.RecorderFunc(func(a engine.Activation) {
		v.Activations = append(v.Activations, a)
	}))

	// Sitekey verification: the X-Adblock-key header first, then the
	// data-adblockkey attribute of the root element.
	host := domainutil.HostOf(v.FinalURL)
	uri := resp.Request.URL.RequestURI()
	if header := resp.Header.Get("X-Adblock-key"); header != "" {
		if key, err := sitekey.VerifyHeader(header, uri, host, b.UserAgent); err == nil {
			v.SitekeyB64 = key
		}
	}
	if v.SitekeyB64 == "" {
		if attr := htmlAdblockKey(v.DOM); attr != "" {
			if key, err := sitekey.VerifyHeader(attr, uri, host, b.UserAgent); err == nil {
				v.SitekeyB64 = key
			}
		}
	}

	v.Flags = sess.PagePermissions(v.FinalURL, v.SitekeyB64)

	// Sub-resource requests.
	for _, res := range htmldom.ExtractResources(v.DOM, v.FinalURL) {
		if strings.HasPrefix(res.URL, "data:") {
			continue
		}
		v.Requests++
		allowed, dnt := true, false
		if !v.Flags.DocumentAllowed {
			req, rerr := engine.NewRequest(res.URL, v.FinalURL, res.Type)
			if rerr != nil {
				// Unparseable resource URL: match it as-is, like a real
				// blocker matching whatever the page emitted.
				req = &engine.Request{URL: res.URL, Type: res.Type, DocumentHost: host}
			}
			d := sess.MatchRequest(req)
			if d.Verdict == engine.Blocked {
				allowed = false
				v.BlockedRequests++
			}
			dnt = d.DoNotTrack
			if va, vb := b.DiffViews[0], b.DiffViews[1]; va != nil && vb != nil {
				if b.engine.Diff(req, va, vb).Flipped {
					v.DiffFlipped++
				}
			}
		}
		if allowed && b.FetchResources && budget > 0 && ctx.Err() == nil {
			if b.fetchResource(ctx, res.URL, dnt, &budget) {
				v.FetchedRequests++
			}
		}
	}

	// Element hiding, unless a page-level allowance disabled it.
	if !v.Flags.DocumentAllowed && !v.Flags.ElemHideDisabled {
		v.Hidden = sess.HideElements(v.DOM, v.FinalURL, host)
	}
	if m := b.metrics; m != nil {
		m.pages.Inc()
		m.pageLat.Observe(time.Since(start))
		m.requests.Add(int64(v.Requests))
		m.blocked.Add(int64(v.BlockedRequests))
		m.fetched.Add(int64(v.FetchedRequests))
	}
	return v, nil
}

// fetchResource downloads one allowed sub-resource, gated by the
// per-host circuit breaker when one is configured.
func (b *Browser) fetchResource(ctx context.Context, url string, dnt bool, budget *int64) bool {
	host := domainutil.HostOf(url)
	if b.Breaker != nil && !b.Breaker.Allow(host) {
		return false
	}
	_, _, _, err := b.get(ctx, url, dnt, budget)
	if b.Breaker != nil {
		b.Breaker.Record(host, err)
	}
	return err == nil
}

// htmlAdblockKey extracts the data-adblockkey attribute from the document's
// root html element.
func htmlAdblockKey(doc *htmldom.Node) string {
	for _, n := range doc.Children {
		if n.Tag == "html" {
			if v, ok := n.Attr("data-adblockkey"); ok {
				return v
			}
		}
	}
	return ""
}
