package browser

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"acceptableads/internal/alexa"
	"acceptableads/internal/engine"
	"acceptableads/internal/filter"
	"acceptableads/internal/sitekey"
	"acceptableads/internal/webgen"
	"acceptableads/internal/webserver"
	"acceptableads/internal/retry"
	"acceptableads/internal/xrand"
)

const testWhitelist = `[Adblock Plus 2.0]
! reddit
@@||adzerk.net/reddit/$subdocument,document,domain=reddit.com
reddit.com#@##ad_main
! conversion tracking
@@||stats.g.doubleclick.net^$script,image
@@||gstatic.com^$third-party
`

const testEasylist = `[Adblock Plus 2.0]
||adzerk.net^$third-party
||stats.g.doubleclick.net^
||ad.doubleclick.net^
||adnxs.com^$third-party
###ad_main
###sidebar-ads
##.ad-banner
##.topbar-ad
`

func testSetup(t *testing.T) (*webserver.Server, *Browser) {
	t.Helper()
	u := alexa.NewUniverse(1, 1000000)
	wl := filter.ParseListString("exceptionrules", testWhitelist)
	corpus := webgen.New(1, u, wl)
	srv := webserver.New(corpus)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	eng, err := engine.New(
		engine.NamedList{Name: "easylist", List: filter.ParseListString("easylist", testEasylist)},
		engine.NamedList{Name: "exceptionrules", List: wl},
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(srv.Client(), eng, "")
	if err != nil {
		t.Fatal(err)
	}
	return srv, b
}

func TestVisitReddit(t *testing.T) {
	_, b := testSetup(t)
	v, err := b.Visit("http://reddit.com/")
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != http.StatusOK {
		t.Fatalf("status = %d", v.Status)
	}
	// The reddit page embeds its adzerk frame (from the elemAllows
	// derivation), which EasyList blocks and the whitelist re-allows:
	// we must see activations from both lists.
	lists := map[string]bool{}
	for _, a := range v.Activations {
		lists[a.List] = true
	}
	if !lists["exceptionrules"] {
		t.Errorf("no whitelist activations; got %+v", v.Activations)
	}
	// The ad_main element exists, is hidden by EasyList, and un-hidden
	// by the whitelist exception.
	foundAllowed := false
	for _, m := range v.Hidden {
		if m.Node.ID() == "ad_main" && !m.Hidden() {
			foundAllowed = true
		}
	}
	if !foundAllowed {
		t.Errorf("ad_main not un-hidden on reddit.com: %+v", v.Hidden)
	}
}

func TestVisitBlocksWithoutException(t *testing.T) {
	_, b := testSetup(t)
	// sina.com.cn embeds heavy EasyList-only inventory; its requests to
	// ad.doubleclick.net / adnxs must be blocked.
	v, err := b.Visit("http://sina.com.cn/")
	if err != nil {
		t.Fatal(err)
	}
	if v.BlockedRequests == 0 {
		t.Errorf("no blocked requests on sina.com.cn (requests=%d)", v.Requests)
	}
	if v.BlockedRequests+v.FetchedRequests > v.Requests {
		t.Errorf("accounting broken: %d blocked + %d fetched > %d requests",
			v.BlockedRequests, v.FetchedRequests, v.Requests)
	}
}

func TestVisitCookiesChangeAskCom(t *testing.T) {
	_, b := testSetup(t)
	first, err := b.Visit("http://ask.com/")
	if err != nil {
		t.Fatal(err)
	}
	// Give the browser an ask.com cookie by registering one through a
	// Set-Cookie response: simplest is a second visit after priming the
	// jar via a cookie-setting handler; webgen keys on "any cookies".
	// The webserver never sets cookies for regular sites, so simulate a
	// prior session by injecting a cookie into the jar.
	reqURL := first.FinalURL
	u := mustParse(t, reqURL)
	b.client.Jar.SetCookies(u, []*http.Cookie{{Name: "session", Value: "1"}})
	second, err := b.Visit("http://ask.com/")
	if err != nil {
		t.Fatal(err)
	}
	if second.Requests >= first.Requests {
		t.Errorf("ask.com requests: first=%d second=%d — want fewer with cookies",
			first.Requests, second.Requests)
	}
}

func TestVisitImgurDetection(t *testing.T) {
	_, b := testSetup(t)
	withDetection, err := b.Visit("http://imgur.com/")
	if err != nil {
		t.Fatal(err)
	}
	b.AnnounceAdblock = false
	without, err := b.Visit("http://imgur.com/")
	if err != nil {
		t.Fatal(err)
	}
	if withDetection.Requests == without.Requests &&
		withDetection.BlockedRequests == without.BlockedRequests {
		t.Error("imgur served identical pages with and without ad-block detection")
	}
}

func TestVisitSitekeyParkedDomain(t *testing.T) {
	srv, b := testSetup(t)
	key, err := sitekey.GenerateKey(xrand.New(99), 512)
	if err != nil {
		t.Fatal(err)
	}
	keyB64 := key.PublicBase64()

	// Rebuild the engine with a sitekey filter for this key.
	eng, err := engine.New(
		engine.NamedList{Name: "easylist", List: filter.ParseListString("easylist", testEasylist+"||parked-ads.example^\n")},
		engine.NamedList{Name: "exceptionrules",
			List: filter.ParseListString("exceptionrules", "@@$sitekey="+keyB64+",document\n")},
	)
	if err != nil {
		t.Fatal(err)
	}
	b.engine = eng

	srv.Handle("reddit.cm", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sig, err := key.Sign(r.URL.RequestURI(), "reddit.cm", r.Header.Get("User-Agent"))
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		w.Header().Set("X-Adblock-key", sitekey.Header(keyB64, sig))
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, `<html data-adblockkey=%q><body><img src="http://parked-ads.example/banner.gif"></body></html>`,
			sitekey.Header(keyB64, sig))
	}))

	v, err := b.Visit("http://reddit.cm/")
	if err != nil {
		t.Fatal(err)
	}
	if v.SitekeyB64 != keyB64 {
		t.Fatal("sitekey not verified")
	}
	if !v.Flags.DocumentAllowed {
		t.Fatal("document allowance not granted")
	}
	if v.BlockedRequests != 0 {
		t.Errorf("sitekey page still blocked %d requests", v.BlockedRequests)
	}
	// Without a signature the parked ads are blocked.
	srv.Handle("parked2.cm", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<html><body><img src="http://parked-ads.example/banner.gif"></body></html>`)
	}))
	v2, err := b.Visit("http://parked2.cm/")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Flags.DocumentAllowed {
		t.Error("document allowed without sitekey")
	}
	if v2.BlockedRequests != 1 {
		t.Errorf("unparked ads blocked = %d, want 1", v2.BlockedRequests)
	}
}

func TestVisitWrongHostSignatureRejected(t *testing.T) {
	srv, b := testSetup(t)
	key, err := sitekey.GenerateKey(xrand.New(100), 512)
	if err != nil {
		t.Fatal(err)
	}
	keyB64 := key.PublicBase64()
	eng, err := engine.New(engine.NamedList{Name: "exceptionrules",
		List: filter.ParseListString("exceptionrules", "@@$sitekey="+keyB64+",document\n")})
	if err != nil {
		t.Fatal(err)
	}
	b.engine = eng
	srv.Handle("victim.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Signature computed for a different host: must not verify.
		sig, _ := key.Sign(r.URL.RequestURI(), "other.example", r.Header.Get("User-Agent"))
		w.Header().Set("X-Adblock-key", sitekey.Header(keyB64, sig))
		fmt.Fprint(w, "<html><body></body></html>")
	}))
	v, err := b.Visit("http://victim.example/")
	if err != nil {
		t.Fatal(err)
	}
	if v.SitekeyB64 != "" || v.Flags.DocumentAllowed {
		t.Error("cross-host signature accepted")
	}
}

func TestGetFollowsRedirectsWithCookies(t *testing.T) {
	srv, b := testSetup(t)
	srv.Handle("uni.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Uniregistry-style behavior (§4.2.3): first hit sets a cookie
		// and redirects; the landing page requires it.
		if c, err := r.Cookie("uni"); err == nil && c.Value == "ok" {
			fmt.Fprint(w, "<html><body>landing</body></html>")
			return
		}
		if r.URL.Path == "/landing" {
			http.Error(w, "no cookie", http.StatusForbidden)
			return
		}
		http.SetCookie(w, &http.Cookie{Name: "uni", Value: "ok", Path: "/"})
		http.Redirect(w, r, "/landing", http.StatusFound)
	}))
	resp, body, err := b.Get("http://uni.example/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(body) != "<html><body>landing</body></html>" {
		t.Errorf("redirect+cookie flow failed: %d %q", resp.StatusCode, body)
	}
}

func TestUserAgentCountermeasure(t *testing.T) {
	srv, _ := testSetup(t)
	srv.Handle("crew.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// ParkingCrew-style: 403 for curl-ish agents (§4.2.3).
		if ua := r.Header.Get("User-Agent"); ua == "" || len(ua) < 20 {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		fmt.Fprint(w, "<html><body>parked</body></html>")
	}))
	curl, err := New(srv.Client(), nil, "curl/7.0")
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := curl.Get("http://crew.example/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("curl UA got %d, want 403", resp.StatusCode)
	}
	real, err := New(srv.Client(), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err = real.Get("http://crew.example/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("browser UA got %d, want 200", resp.StatusCode)
	}
}

func mustParse(t *testing.T, raw string) *url.URL {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestDNTHeaderSentOnSignalledRequests(t *testing.T) {
	srv, _ := testSetup(t)
	var gotDNT []string
	srv.Handle("tracker.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDNT = append(gotDNT, r.Header.Get("DNT"))
		fmt.Fprint(w, "ok")
	}))
	srv.Handle("dnt-page.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<html><body><img src="http://tracker.example/pixel.gif"></body></html>`)
	}))
	eng, err := engine.New(
		engine.NamedList{Name: "dntlist",
			List: filter.ParseListString("dntlist", "||tracker.example^$donottrack\n")},
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(srv.Client(), eng, "")
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Visit("http://dnt-page.example/")
	if err != nil {
		t.Fatal(err)
	}
	if v.BlockedRequests != 0 {
		t.Fatalf("DNT filter blocked a request")
	}
	if len(gotDNT) != 1 || gotDNT[0] != "1" {
		t.Errorf("tracker saw DNT headers %v, want [1]", gotDNT)
	}
}

func TestRedirectChainBounded(t *testing.T) {
	srv, b := testSetup(t)
	srv.Handle("loop.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, r.URL.Path+"x", http.StatusFound)
	}))
	b.MaxRedirects = 4
	_, _, err := b.Get("http://loop.example/")
	if !errors.Is(err, retry.ErrTooManyRedirects) {
		t.Fatalf("err = %v, want ErrTooManyRedirects", err)
	}
	if retry.ClassOf(err) != "redirect_loop" {
		t.Errorf("ClassOf = %q", retry.ClassOf(err))
	}
}

func TestRedirectChainRecorded(t *testing.T) {
	srv, b := testSetup(t)
	srv.Handle("hop.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			http.Redirect(w, r, "/a", http.StatusMovedPermanently)
		case "/a":
			http.Redirect(w, r, "/b", http.StatusFound)
		default:
			fmt.Fprint(w, "<html><body>done</body></html>")
		}
	}))
	v, err := b.Visit("http://hop.example/")
	if err != nil {
		t.Fatal(err)
	}
	if v.Redirects != 2 {
		t.Errorf("Redirects = %d, want 2", v.Redirects)
	}
	if v.FinalURL != "http://hop.example/b" {
		t.Errorf("FinalURL = %q", v.FinalURL)
	}
}

func TestByteBudgetCapsVisit(t *testing.T) {
	srv, b := testSetup(t)
	big := strings.Repeat("x", 64<<10)
	srv.Handle("big.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "<html><body>%s</body></html>", big)
	}))
	b.MaxTotalBytes = 1 << 10
	_, body, err := b.Get("http://big.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) > 1<<10 {
		t.Errorf("read %d bytes past a 1KiB budget", len(body))
	}
	// A second request in the same visit budget would be refused.
}

func TestPageTimeoutClassifiesAsTimeout(t *testing.T) {
	srv, b := testSetup(t)
	srv.Handle("stall.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	b.PageTimeout = 200 * time.Millisecond
	start := time.Now()
	_, err := b.Visit("http://stall.example/")
	if err == nil {
		t.Fatal("stalled page did not error")
	}
	if retry.ClassOf(err) != "timeout" || !retry.Retryable(err) {
		t.Errorf("class = %q retryable = %v (%v)", retry.ClassOf(err), retry.Retryable(err), err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("deadline did not bound the visit")
	}
}
