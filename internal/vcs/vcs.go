// Package vcs is a minimal append-only revision store standing in for the
// public Mercurial repository Eyeo uses for the Acceptable Ads whitelist
// (https://hg.adblockplus.org/exceptionrules — unavailable offline; see
// DESIGN.md §2). Each revision stores the full whitelist snapshot plus the
// commit date and message; the history analyzer diffs consecutive
// snapshots, exactly as the paper's tooling diffed hg revisions.
package vcs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"acceptableads/internal/obs"
)

// vcsMetrics times the revision-diff hot path of the history analyses.
type vcsMetrics struct {
	diffs   *obs.Counter
	latency *obs.Histogram
}

// metrics is package-level because DiffContents is a free function; a nil
// pointer (the default) keeps diffing uninstrumented.
var metrics atomic.Pointer[vcsMetrics]

// SetMetrics wires revision-diff telemetry ("vcs.diffs",
// "vcs.diff.latency") into reg; nil disables it.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&vcsMetrics{
		diffs:   reg.Counter("vcs.diffs"),
		latency: reg.Histogram("vcs.diff.latency"),
	})
}

// Revision is one committed version of the tracked file.
type Revision struct {
	// ID is the sequential revision number, starting at 0 — the paper
	// refers to these directly ("Rev. 988").
	ID int
	// Date is the commit timestamp.
	Date time.Time
	// Message is the commit message. Eyeo's A-filter commits all read
	// "Updated whitelists" (§7), which the analyzer keys on.
	Message string
	// Content is the full file snapshot at this revision.
	Content string
}

// Repo is an append-only sequence of revisions of a single file.
type Repo struct {
	revs []Revision
}

// Commit appends a snapshot and returns its revision ID. Commits must be
// dated monotonically; out-of-order dates are an error because the yearly
// churn analysis groups revisions by date.
func (r *Repo) Commit(date time.Time, message, content string) (int, error) {
	if n := len(r.revs); n > 0 && date.Before(r.revs[n-1].Date) {
		return 0, fmt.Errorf("vcs: commit dated %s before tip %s",
			date.Format("2006-01-02"), r.revs[n-1].Date.Format("2006-01-02"))
	}
	id := len(r.revs)
	r.revs = append(r.revs, Revision{ID: id, Date: date, Message: message, Content: content})
	return id, nil
}

// Len returns the number of revisions.
func (r *Repo) Len() int { return len(r.revs) }

// Rev returns revision id, or nil when out of range.
func (r *Repo) Rev(id int) *Revision {
	if id < 0 || id >= len(r.revs) {
		return nil
	}
	return &r.revs[id]
}

// Tip returns the latest revision, or nil for an empty repo.
func (r *Repo) Tip() *Revision {
	if len(r.revs) == 0 {
		return nil
	}
	return &r.revs[len(r.revs)-1]
}

// Diff is a multiset line diff between two snapshots: Added lines occur
// more often in the new content, Removed more often in the old. Comments
// and blank lines are ignored — the analyzer counts filters, and a
// modified filter naturally shows up as one removal plus one addition,
// matching Table 1's "modifications are counted as new filters".
type Diff struct {
	Added   []string
	Removed []string
}

// DiffContents computes the multiset filter-line diff from old to new.
func DiffContents(old, new string) Diff {
	if m := metrics.Load(); m != nil {
		start := time.Now()
		defer func() {
			m.diffs.Inc()
			m.latency.Observe(time.Since(start))
		}()
	}
	oldCounts := lineCounts(old)
	newCounts := lineCounts(new)
	var d Diff
	for line, n := range newCounts {
		for i := oldCounts[line]; i < n; i++ {
			d.Added = append(d.Added, line)
		}
	}
	for line, n := range oldCounts {
		for i := newCounts[line]; i < n; i++ {
			d.Removed = append(d.Removed, line)
		}
	}
	return d
}

// lineCounts tallies filter lines (non-blank, non-comment, non-header).
func lineCounts(content string) map[string]int {
	counts := make(map[string]int)
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") ||
			(strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]")) {
			continue
		}
		counts[line]++
	}
	return counts
}

// FilterLineCount returns the number of filter lines in a snapshot (the
// quantity Figure 3 plots per revision). Malformed filters count — they
// are lines in the list — while comments do not.
func FilterLineCount(content string) int {
	n := 0
	for _, c := range lineCounts(content) {
		n += c
	}
	return n
}
