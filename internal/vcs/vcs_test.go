package vcs

import (
	"testing"
	"time"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 12, 0, 0, 0, time.UTC)
}

func TestCommitAndAccess(t *testing.T) {
	var r Repo
	id0, err := r.Commit(date(2011, 10, 1), "initial", "@@||a.com^\n")
	if err != nil || id0 != 0 {
		t.Fatalf("first commit: %d, %v", id0, err)
	}
	id1, err := r.Commit(date(2011, 10, 3), "second", "@@||a.com^\n@@||b.com^\n")
	if err != nil || id1 != 1 {
		t.Fatalf("second commit: %d, %v", id1, err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.Rev(0).Message != "initial" || r.Tip().ID != 1 {
		t.Error("revision access broken")
	}
	if r.Rev(5) != nil || r.Rev(-1) != nil {
		t.Error("out-of-range access should be nil")
	}
}

func TestCommitRejectsBackdating(t *testing.T) {
	var r Repo
	if _, err := r.Commit(date(2012, 1, 1), "a", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit(date(2011, 1, 1), "b", ""); err == nil {
		t.Fatal("backdated commit accepted")
	}
	// Same-date commits are fine (Eyeo often committed multiple times a
	// day).
	if _, err := r.Commit(date(2012, 1, 1), "c", ""); err != nil {
		t.Fatal(err)
	}
}

func TestDiffContents(t *testing.T) {
	old := "! comment\n@@||a.com^\n@@||b.com^$domain=x.com\n"
	new := "! new comment\n@@||a.com^\n@@||b.com^$domain=x.com|y.com\n@@||c.com^\n"
	d := DiffContents(old, new)
	if len(d.Added) != 2 {
		t.Errorf("added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "@@||b.com^$domain=x.com" {
		t.Errorf("removed = %v", d.Removed)
	}
}

func TestDiffDuplicates(t *testing.T) {
	// Multiset semantics: going from one copy to two copies of the same
	// filter is one addition (the hygiene section's duplicate filters).
	d := DiffContents("@@||a.com^\n", "@@||a.com^\n@@||a.com^\n")
	if len(d.Added) != 1 || len(d.Removed) != 0 {
		t.Errorf("dup diff = %+v", d)
	}
	d = DiffContents("@@||a.com^\n@@||a.com^\n", "@@||a.com^\n")
	if len(d.Added) != 0 || len(d.Removed) != 1 {
		t.Errorf("dedup diff = %+v", d)
	}
}

func TestDiffIgnoresComments(t *testing.T) {
	d := DiffContents("! a\n", "! b\n[Adblock Plus 2.0]\n")
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Errorf("comment diff = %+v", d)
	}
}

func TestFilterLineCount(t *testing.T) {
	content := "[Adblock Plus 2.0]\n! c\n@@||a.com^\n@@||a.com^\n\n@@||b.com^\n"
	if n := FilterLineCount(content); n != 3 {
		t.Errorf("count = %d, want 3", n)
	}
	if n := FilterLineCount(""); n != 0 {
		t.Errorf("empty count = %d", n)
	}
}

func TestDiffRoundTripProperty(t *testing.T) {
	// Applying a diff's counts reconciles the two snapshots:
	// old + added - removed == new (by filter-line count).
	old := "@@||a.com^\n@@||b.com^\n@@||b.com^\n"
	new := "@@||b.com^\n@@||c.com^\n@@||d.com^\n"
	d := DiffContents(old, new)
	if FilterLineCount(old)+len(d.Added)-len(d.Removed) != FilterLineCount(new) {
		t.Error("diff does not reconcile counts")
	}
}
