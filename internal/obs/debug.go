package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler serves the live telemetry endpoints:
//
//	/debug/vars     — expvar-style JSON snapshot of the registry
//	/debug/progress — per-stage completion, rate and ETA
//	/debug/trace    — the DefaultRing trace-annotation flight recorder
//	/metrics        — Prometheus text-format exposition of the registry
//	/debug/pprof/*  — the standard Go profiler endpoints
//
// reg and prog may each be nil; their endpoints then serve empty objects
// (a nil prog serves literally "{}" on /debug/progress).
func DebugHandler(reg *Registry, prog *Progress) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>debug</h1><ul>
<li><a href="/debug/vars">/debug/vars</a></li>
<li><a href="/debug/progress">/debug/progress</a></li>
<li><a href="/debug/trace">/debug/trace</a></li>
<li><a href="/metrics">/metrics</a></li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		var s Snapshot
		if reg != nil {
			s = reg.Snapshot()
		}
		writeJSON(w, s)
	})
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		if prog == nil {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, "{}")
			return
		}
		writeJSON(w, prog.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"events": DefaultRing.Events()})
	})
	mux.Handle("/metrics", PrometheusHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data) //nolint:errcheck // best-effort debug output
}

// ServeDebug binds addr (e.g. "127.0.0.1:6060") and serves DebugHandler on
// it in the background. It returns the bound address (useful with a ":0"
// port) and a closer.
func ServeDebug(addr string, reg *Registry, prog *Progress) (boundAddr string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           DebugHandler(reg, prog),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), srv.Close, nil
}
