package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"acceptableads/internal/xrand"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			ga := reg.Gauge("g")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				ga.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

func TestHistogramConcurrentHammer(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := xrand.New(uint64(g) + 1)
			for i := 0; i < perG; i++ {
				h.ObserveNs(int64(r.Intn(1_000_000)) + 1)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	if h.Min() < 1 || h.Max() >= 1_000_001 {
		t.Errorf("min/max out of range: %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); m <= 0 || m >= 1_000_001 {
		t.Errorf("mean out of range: %f", m)
	}
}

// TestHistogramQuantileAgainstReference checks the bucketed quantiles
// against an exactly sorted reference within the documented 12.5% relative
// error (plus slack for the discrete reference rank).
func TestHistogramQuantileAgainstReference(t *testing.T) {
	h := NewHistogram()
	r := xrand.New(7)
	vals := make([]int64, 20000)
	for i := range vals {
		// Log-uniform-ish spread over 1ns..100ms.
		vals[i] = int64(1 + r.Intn(1<<(10+r.Intn(17))))
		h.ObserveNs(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		if rank < 0 {
			rank = 0
		}
		want := float64(vals[rank])
		got := float64(h.Quantile(q))
		if got < want*0.999 || got > want*1.13+1 {
			t.Errorf("Quantile(%.2f) = %.0f, reference %.0f (outside [ref, ref*1.13])", q, got, want)
		}
	}
	if h.Quantile(1.0) != vals[len(vals)-1] {
		t.Errorf("Quantile(1) = %d, want exact max %d", h.Quantile(1.0), vals[len(vals)-1])
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 15, 16, 17, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		if idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if hi := bucketHigh(idx); hi < v {
			t.Fatalf("bucketHigh(%d) = %d < value %d", idx, hi, v)
		}
		prev = idx
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.match.attempts").Add(12345)
	reg.Gauge("webserver.inflight").Set(7)
	h := reg.Histogram("engine.match.latency")
	for i := 1; i <= 1000; i++ {
		h.ObserveNs(int64(i) * 100)
	}
	snap := reg.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot did not round-trip:\n got %+v\nwant %+v", back, snap)
	}
	if back.Counters["engine.match.attempts"] != 12345 {
		t.Error("counter lost in round trip")
	}
	if back.Histograms["engine.match.latency"].Count != 1000 {
		t.Error("histogram count lost in round trip")
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress()
	st := p.Stage("Top 5K", 100)
	p.Stage("5K–50K", 50)
	st.Add(25)
	time.Sleep(5 * time.Millisecond)
	st.Add(25)

	s := p.Snapshot()
	if len(s.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(s.Stages))
	}
	if s.Stages[0].Name != "Top 5K" || s.Stages[0].Done != 50 || s.Stages[0].Total != 100 {
		t.Errorf("stage 0 = %+v", s.Stages[0])
	}
	if s.Stages[0].Rate <= 0 || s.Stages[0].ETA <= 0 {
		t.Errorf("started stage should have rate and ETA: %+v", s.Stages[0])
	}
	if s.Stages[1].Rate != 0 || s.Stages[1].ETA != 0 {
		t.Errorf("unstarted stage should have zero rate/ETA: %+v", s.Stages[1])
	}
	if s.Done != 50 || s.Total != 150 || s.Rate <= 0 || s.ETA <= 0 {
		t.Errorf("overall = %+v", s)
	}
}

func TestSpanRecordsHistogram(t *testing.T) {
	reg := NewRegistry()
	sp := StartSpan(reg, nil, "crawl.visit")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Errorf("span duration %v too short", d)
	}
	h := reg.Histogram("crawl.visit.duration")
	if h.Count() != 1 || h.Max() < int64(time.Millisecond) {
		t.Errorf("span did not record: count=%d max=%d", h.Count(), h.Max())
	}
	// A span with no registry and no logger is a safe no-op.
	StartSpan(nil, nil, "noop").End()
}

func TestLogSpecLevels(t *testing.T) {
	SetLogOutput(io.Discard)
	defer func() {
		SetLogOutput(io.Discard)
		SetLogSpec("info") //nolint:errcheck
	}()
	if err := SetLogSpec("warn,engine=debug"); err != nil {
		t.Fatal(err)
	}
	if !Logger("engine").Enabled(nil, slog.LevelDebug) {
		t.Error("engine should be enabled at debug")
	}
	if Logger("sitesurvey").Enabled(nil, slog.LevelInfo) {
		t.Error("sitesurvey should be filtered at info (default warn)")
	}
	if !Logger("sitesurvey").Enabled(nil, slog.LevelWarn) {
		t.Error("sitesurvey should be enabled at warn")
	}
	if err := SetLogSpec("nope"); err == nil {
		t.Error("bad level should error")
	}
	if err := SetLogSpec(""); err != nil {
		t.Error("empty spec should be a no-op")
	}
	NopLogger().Info("dropped")
}

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("survey.pages").Add(42)
	prog := NewProgress()
	prog.Stage("Top 5K", 10).Add(4)

	ts := httptest.NewServer(DebugHandler(reg, prog))
	defer ts.Close()

	var snap Snapshot
	getJSON(t, ts.Client(), ts.URL+"/debug/vars", &snap)
	if snap.Counters["survey.pages"] != 42 {
		t.Errorf("/debug/vars counters = %+v", snap.Counters)
	}

	var ps ProgressSnapshot
	getJSON(t, ts.Client(), ts.URL+"/debug/progress", &ps)
	if len(ps.Stages) != 1 || ps.Stages[0].Done != 4 {
		t.Errorf("/debug/progress = %+v", ps)
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	addr, closeFn, err := ServeDebug("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	var snap Snapshot
	getJSON(t, http.DefaultClient, "http://"+addr+"/debug/vars", &snap)
}

func getJSON(t *testing.T, c *http.Client, url string, v any) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: decode: %v", url, err)
	}
}
