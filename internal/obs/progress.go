package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks completion of a set of named stages (the survey's four
// sample strata, the parked scan's five services, ...). Stages are cheap
// to update from many workers; Snapshot derives rates and ETAs. Served
// live by /debug/progress.
type Progress struct {
	mu     sync.Mutex
	order  []string
	stages map[string]*Stage
}

// NewProgress creates an empty tracker.
func NewProgress() *Progress {
	return &Progress{stages: make(map[string]*Stage)}
}

// Stage returns the named stage, creating it on first use and (re)setting
// its total.
func (p *Progress) Stage(name string, total int) *Stage {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stages[name]
	if st == nil {
		st = &Stage{name: name}
		p.stages[name] = st
		p.order = append(p.order, name)
	}
	st.total.Store(int64(total))
	return st
}

// Stage is one unit of tracked work.
type Stage struct {
	name    string
	total   atomic.Int64
	done    atomic.Int64
	startNs atomic.Int64 // wall clock of the first Add; 0 = not started
}

// Add records n completed items. The first Add stamps the stage's start
// time, from which rate and ETA derive.
func (st *Stage) Add(n int) {
	st.startNs.CompareAndSwap(0, time.Now().UnixNano())
	st.done.Add(int64(n))
}

// Done returns the completed-item count.
func (st *Stage) Done() int64 { return st.done.Load() }

// StageSnapshot is the live state of one stage.
type StageSnapshot struct {
	Name    string  `json:"name"`
	Total   int64   `json:"total"`
	Done    int64   `json:"done"`
	Rate    float64 `json:"rate_per_sec"`
	Elapsed float64 `json:"elapsed_seconds"`
	ETA     float64 `json:"eta_seconds"`
}

func (st *Stage) snapshot(now time.Time) StageSnapshot {
	s := StageSnapshot{Name: st.name, Total: st.total.Load(), Done: st.done.Load()}
	start := st.startNs.Load()
	if start == 0 || s.Done == 0 {
		return s
	}
	s.Elapsed = now.Sub(time.Unix(0, start)).Seconds()
	if s.Elapsed > 0 {
		s.Rate = float64(s.Done) / s.Elapsed
	}
	if remaining := s.Total - s.Done; remaining > 0 && s.Rate > 0 {
		s.ETA = float64(remaining) / s.Rate
	}
	return s
}

// ProgressSnapshot is the live state of every stage plus overall totals.
type ProgressSnapshot struct {
	Stages []StageSnapshot `json:"stages"`
	Done   int64           `json:"done"`
	Total  int64           `json:"total"`
	Rate   float64         `json:"rate_per_sec"`
	ETA    float64         `json:"eta_seconds"`
}

// Snapshot derives per-stage and overall completion, rate, and ETA.
func (p *Progress) Snapshot() ProgressSnapshot {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	// Stages is never nil so the snapshot marshals as [] rather than null
	// even before any stage exists.
	out := ProgressSnapshot{Stages: []StageSnapshot{}}
	var earliest int64
	for _, name := range p.order {
		ss := p.stages[name].snapshot(now)
		out.Stages = append(out.Stages, ss)
		out.Done += ss.Done
		out.Total += ss.Total
		if start := p.stages[name].startNs.Load(); start != 0 && (earliest == 0 || start < earliest) {
			earliest = start
		}
	}
	if earliest != 0 && out.Done > 0 {
		elapsed := now.Sub(time.Unix(0, earliest)).Seconds()
		if elapsed > 0 {
			out.Rate = float64(out.Done) / elapsed
		}
		if remaining := out.Total - out.Done; remaining > 0 && out.Rate > 0 {
			out.ETA = float64(remaining) / out.Rate
		}
	}
	return out
}
