package obs

import (
	"context"
	"log/slog"
	"time"
)

// Span is a stage timer: StartSpan stamps the clock, End records the
// elapsed time into the registry's "<name>.duration" histogram and — when
// tracing is enabled — emits a debug log line. Span is a value type so a
// span on the hot path costs no allocation.
//
// A span that ends in failure should be marked with Fail before End: the
// duration then lands in the separate "<name>.error.duration" histogram
// and bumps the "<name>.errors" counter, so ok and error latencies never
// pollute each other's quantiles. Note that `defer sp.End()` copies the
// span before any later Fail call — when a span can fail, end it
// explicitly (or defer a closure).
type Span struct {
	name   string
	start  time.Time
	hist   *Histogram
	log    *slog.Logger
	reg    *Registry
	err    error
	trace  TraceID
	id     uint64
	parent uint64
}

// StartSpan opens a span. reg and log may each be nil, disabling the
// corresponding output.
func StartSpan(reg *Registry, log *slog.Logger, name string) Span {
	sp := Span{name: name, start: time.Now(), log: log, reg: reg}
	if reg != nil {
		sp.hist = reg.Histogram(name + ".duration")
	}
	return sp
}

// StartSpanCtx opens a span correlated to the context's trace: the span
// takes the context's trace id and span parent, and the returned context
// carries the new span's id so child spans link back to it. The trace id,
// span id, and parent appear on the span's log line.
func StartSpanCtx(ctx context.Context, reg *Registry, log *slog.Logger, name string) (Span, context.Context) {
	sp := StartSpan(reg, log, name)
	sp.trace = TraceFrom(ctx)
	sp.parent = currentSpan(ctx)
	sp.id = spanSeq.Add(1)
	return sp, context.WithValue(ctx, spanKey{}, sp.id)
}

// Fail marks the span as ended-in-error. A nil err clears the mark. Call
// before End.
func (s *Span) Fail(err error) { s.err = err }

// Failed reports whether the span was marked failed.
func (s *Span) Failed() bool { return s.err != nil }

// End closes the span, recording its duration into the ok or the error
// histogram depending on Fail. attrs are extra slog key/value pairs
// attached to the trace line.
func (s Span) End(attrs ...any) time.Duration {
	d := time.Since(s.start)
	status := "ok"
	if s.err != nil {
		status = "error"
		if s.reg != nil {
			s.reg.Histogram(s.name + ".error.duration").Observe(d)
			s.reg.Counter(s.name + ".errors").Inc()
		}
	} else if s.hist != nil {
		s.hist.Observe(d)
	}
	if s.log != nil && TracingEnabled() {
		base := []any{"span", s.name, "dur", d, "status", status}
		if s.err != nil {
			base = append(base, "err", s.err)
		}
		if s.trace != "" {
			base = append(base, "trace", s.trace, "span_id", s.id)
			if s.parent != 0 {
				base = append(base, "parent_id", s.parent)
			}
		}
		s.log.Debug("span", append(base, attrs...)...)
	}
	return d
}
