package obs

import (
	"log/slog"
	"time"
)

// Span is a stage timer: StartSpan stamps the clock, End records the
// elapsed time into the registry's "<name>.duration" histogram and — when
// tracing is enabled — emits a debug log line. Span is a value type so a
// span on the hot path costs no allocation.
type Span struct {
	name  string
	start time.Time
	hist  *Histogram
	log   *slog.Logger
}

// StartSpan opens a span. reg and log may each be nil, disabling the
// corresponding output.
func StartSpan(reg *Registry, log *slog.Logger, name string) Span {
	sp := Span{name: name, start: time.Now(), log: log}
	if reg != nil {
		sp.hist = reg.Histogram(name + ".duration")
	}
	return sp
}

// End closes the span, recording its duration. attrs are extra slog
// key/value pairs attached to the trace line.
func (s Span) End(attrs ...any) time.Duration {
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d)
	}
	if s.log != nil && TracingEnabled() {
		s.log.Debug("span", append([]any{"span", s.name, "dur", d}, attrs...)...)
	}
	return d
}
