package obs

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace id lengths = %d, %d, want 16", len(a), len(b))
	}
	if a == b {
		t.Errorf("two minted ids collided: %s", a)
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if id := TraceFrom(ctx); id != "" {
		t.Errorf("TraceFrom(empty ctx) = %q, want \"\"", id)
	}
	ctx2, id := EnsureTrace(ctx)
	if id == "" || TraceFrom(ctx2) != id {
		t.Fatalf("EnsureTrace minted %q but context carries %q", id, TraceFrom(ctx2))
	}
	ctx3, id2 := EnsureTrace(ctx2)
	if id2 != id || ctx3 != ctx2 {
		t.Errorf("EnsureTrace re-minted on a traced context: %q -> %q", id, id2)
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 {
		t.Fatalf("fresh ring Len = %d, want 0", r.Len())
	}
	for i := 0; i < 10; i++ {
		r.Add(Event{Name: "e", Detail: string(rune('0' + i))})
	}
	evs := r.Events()
	if len(evs) != 4 || r.Len() != 4 {
		t.Fatalf("ring holds %d/%d events, want 4", len(evs), r.Len())
	}
	// Oldest-first: events 6,7,8,9 survive.
	for i, ev := range evs {
		if want := string(rune('0' + 6 + i)); ev.Detail != want {
			t.Errorf("event[%d].Detail = %q, want %q", i, ev.Detail, want)
		}
		if ev.Time.IsZero() {
			t.Errorf("event[%d] has zero time; Add should stamp it", i)
		}
	}
}

func TestRingAnnotateCarriesTrace(t *testing.T) {
	r := NewRing(8)
	ctx := ContextWithTrace(context.Background(), "deadbeefcafef00d")
	r.Annotate(ctx, "cache.hit", "url=x")
	evs := r.Events()
	if len(evs) != 1 || evs[0].Trace != "deadbeefcafef00d" || evs[0].Name != "cache.hit" {
		t.Errorf("annotated event = %+v", evs)
	}
}

func TestSpanFailSplitsHistograms(t *testing.T) {
	reg := NewRegistry()

	ok := StartSpan(reg, nil, "stage")
	ok.End()

	bad := StartSpan(reg, nil, "stage")
	bad.Fail(errors.New("boom"))
	if !bad.Failed() {
		t.Fatal("Failed() = false after Fail")
	}
	bad.End()

	s := reg.Snapshot()
	if got := s.Histograms["stage.duration"].Count; got != 1 {
		t.Errorf("ok histogram count = %d, want 1", got)
	}
	if got := s.Histograms["stage.error.duration"].Count; got != 1 {
		t.Errorf("error histogram count = %d, want 1", got)
	}
	if got := s.Counters["stage.errors"]; got != 1 {
		t.Errorf("error counter = %d, want 1", got)
	}
}

func TestStartSpanCtxParentChild(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), "abcdabcdabcdabcd")
	parent, ctx := StartSpanCtx(ctx, nil, nil, "parent")
	child, _ := StartSpanCtx(ctx, nil, nil, "child")
	if parent.trace != "abcdabcdabcdabcd" || child.trace != parent.trace {
		t.Errorf("trace ids: parent %q child %q", parent.trace, child.trace)
	}
	if parent.parent != 0 {
		t.Errorf("root span has parent %d, want 0", parent.parent)
	}
	if child.parent != parent.id {
		t.Errorf("child.parent = %d, want parent id %d", child.parent, parent.id)
	}
	child.End()
	parent.End()
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	// 3 fast observations (≤1µs) and 2 slow (≈5ms).
	for i := 0; i < 3; i++ {
		h.ObserveNs(500)
	}
	h.ObserveNs(5_000_000)
	h.ObserveNs(5_000_000)

	cum := h.Cumulative(promBoundsNs)
	if len(cum) != len(promBoundsNs)+1 {
		t.Fatalf("Cumulative returned %d slots, want %d", len(cum), len(promBoundsNs)+1)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts not monotonic: %v", cum)
		}
	}
	if total := cum[len(cum)-1]; total != 5 {
		t.Errorf("+Inf bucket = %d, want 5", total)
	}
	// The 1µs bound must already hold the three fast observations.
	var microIdx int
	for i, b := range promBoundsNs {
		if b == 1_000 {
			microIdx = i
		}
	}
	if cum[microIdx] != 3 {
		t.Errorf("le=1µs bucket = %d, want 3 (cum=%v)", cum[microIdx], cum)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.match.attempts").Add(7)
	reg.Gauge("decision.cache.entries").Add(3)
	h := reg.Histogram("engine.match.latency")
	h.Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE engine_match_attempts_total counter\nengine_match_attempts_total 7\n",
		"# TYPE decision_cache_entries gauge\ndecision_cache_entries 3\n",
		"# TYPE engine_match_latency_seconds histogram\n",
		"engine_match_latency_seconds_bucket{le=\"+Inf\"} 1\n",
		"engine_match_latency_seconds_count 1\n",
		"# TYPE engine_match_latency_seconds_p99 gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"engine.match.attempts": "engine_match_attempts",
		"9lives":                "_9lives",
		"a-b/c":                 "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDebugHandlerNilProgress is the regression test for the nil-Progress
// crash: aa-serve passes no Progress, and /debug/progress must serve "{}"
// instead of dereferencing nil.
func TestDebugHandlerNilProgress(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(NewRegistry(), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := strings.TrimSpace(string(body)); got != "{}" {
		t.Errorf("/debug/progress body = %q, want {}", got)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q, want application/json", ct)
	}

	// /metrics rides on the same mux and must advertise the text format.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("/metrics content type = %q, want %q", ct, PrometheusContentType)
	}
}
