package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// Logging: one *slog.Logger per component, all writing to a shared
// destination (stderr by default), each filtered by a per-component level
// that falls back to the process-wide default. Levels are dynamic — a
// SetLogSpec call mid-run retunes every already-created logger.

var (
	logMu      sync.Mutex
	logOut     io.Writer = os.Stderr
	logDefault           = func() *slog.LevelVar {
		v := new(slog.LevelVar)
		v.Set(slog.LevelInfo)
		return v
	}()
	logLevels = map[string]*slog.LevelVar{}
	logCache  = map[string]*slog.Logger{}
	tracing   atomic.Bool
)

// compLeveler resolves a component's effective level dynamically: the
// explicit per-component override when one exists, the default otherwise.
type compLeveler struct{ component string }

func (c compLeveler) Level() slog.Level {
	logMu.Lock()
	defer logMu.Unlock()
	if v, ok := logLevels[c.component]; ok {
		return v.Level()
	}
	return logDefault.Level()
}

// Logger returns the structured logger for a component ("engine",
// "sitesurvey", "aa-survey", ...). Loggers are cached; the same component
// always gets the same instance.
func Logger(component string) *slog.Logger {
	logMu.Lock()
	defer logMu.Unlock()
	if l, ok := logCache[component]; ok {
		return l
	}
	h := slog.NewTextHandler(logOut, &slog.HandlerOptions{Level: compLeveler{component}})
	l := slog.New(h).With("component", component)
	logCache[component] = l
	return l
}

// SetLogOutput redirects all subsequently created loggers to w (tests).
// The logger cache is reset so Logger calls pick the new destination up.
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	logOut = w
	logCache = map[string]*slog.Logger{}
}

// SetLogSpec parses a -log-level style spec and applies it. The spec is a
// comma-separated list of "level" (sets the default) and "component=level"
// (sets one component) tokens, e.g. "warn,engine=debug". Levels are debug,
// info, warn, error. An empty spec is a no-op.
func SetLogSpec(spec string) error {
	if spec == "" {
		return nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if comp, lvl, ok := strings.Cut(tok, "="); ok {
			l, err := parseLevel(lvl)
			if err != nil {
				return err
			}
			logMu.Lock()
			v := logLevels[comp]
			if v == nil {
				v = new(slog.LevelVar)
				logLevels[comp] = v
			}
			v.Set(l)
			logMu.Unlock()
			continue
		}
		l, err := parseLevel(tok)
		if err != nil {
			return err
		}
		logDefault.Set(l)
	}
	return nil
}

func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// SetTracing toggles span tracing: when on, every Span.End with a logger
// emits a debug line. The cmd/ binaries wire this to -trace.
func SetTracing(on bool) { tracing.Store(on) }

// TracingEnabled reports whether span tracing is on.
func TracingEnabled() bool { return tracing.Load() }

// discardHandler drops everything (slog.DiscardHandler needs Go 1.24).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NopLogger returns a logger that discards everything — the default for
// library code given no logger.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }
