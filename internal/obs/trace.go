package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing: a TraceID travels with a request's context through the
// decision service (match, batch, explain, reload), ties its span log
// lines together, annotates a bounded in-memory ring for /debug/trace,
// and is echoed back to the client in the X-AA-Trace response header so a
// caller can quote the id when reporting a surprising verdict.
//
// This is deliberately not a distributed tracer: ids are opaque 16-hex
// strings, spans carry parent ids only for log correlation, and the ring
// is a fixed-size overwrite buffer — the goal is "why did request X do
// that" forensics, not cross-service timelines.

// TraceID identifies one request through the serving path. The zero value
// ("") means "untraced".
type TraceID string

// traceSeq salts NewTraceID's fallback path; spanSeq numbers spans.
var (
	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64
)

// NewTraceID mints a random 16-hex-character id. Randomness comes from
// crypto/rand with a counter fallback, so minting never fails.
func NewTraceID() TraceID {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return TraceID(hex.EncodeToString(b[:]))
}

// traceKey carries the TraceID in a context; spanKey carries the current
// span's id for parent/child correlation.
type (
	traceKey struct{}
	spanKey  struct{}
)

// ContextWithTrace attaches a trace id to ctx.
func ContextWithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom returns the context's trace id, "" when untraced.
func TraceFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceKey{}).(TraceID)
	return id
}

// EnsureTrace returns ctx carrying a trace id, minting one when absent.
func EnsureTrace(ctx context.Context) (context.Context, TraceID) {
	if id := TraceFrom(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return ContextWithTrace(ctx, id), id
}

// currentSpan returns the context's innermost span id, 0 at the root.
func currentSpan(ctx context.Context) uint64 {
	id, _ := ctx.Value(spanKey{}).(uint64)
	return id
}

// Event is one annotation on a trace: a named point-in-time note such as
// "cache.hit" or "reload.done", optionally with free-form detail.
type Event struct {
	Time   time.Time `json:"time"`
	Trace  TraceID   `json:"trace,omitempty"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

// Ring is a fixed-capacity overwrite buffer of recent Events — the
// process's flight recorder, served by /debug/trace. Writers pay one
// mutex-guarded slot store; there is no allocation after construction.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever added; next%len(buf) is the write slot
}

// NewRing creates a ring holding the last n events (n < 1 is coerced to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// DefaultRing is the process-wide flight recorder the cmd/ binaries
// annotate into.
var DefaultRing = NewRing(512)

// Add appends an event, overwriting the oldest once full. A zero Time is
// stamped with now.
func (r *Ring) Add(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// Annotate records a named event under the context's trace id.
func (r *Ring) Annotate(ctx context.Context, name, detail string) {
	r.Add(Event{Trace: TraceFrom(ctx), Name: name, Detail: detail})
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	size := uint64(len(r.buf))
	count := n
	if count > size {
		count = size
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}

// Len returns how many events are currently buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.next)
}
