// Package obs is the telemetry subsystem of the reproduction: atomic
// counters and gauges, lock-striped log-bucketed latency histograms with
// quantile export, span-style stage timers, a structured logger with
// per-component levels, a crawl progress tracker with ETA, and a live
// /debug HTTP endpoint (expvar-style snapshot, progress, pprof).
//
// The package is dependency-free (standard library only) and built so that
// the instrumented hot paths pay nothing when telemetry is off: every
// consumer gates on a nil registry or a nil pre-resolved metrics struct,
// and the instruments themselves are single atomic operations.
//
// Naming convention: dotted lowercase paths, most-general component first
// ("engine.match.latency", "webserver.status.2xx"). Histogram observations
// are nanoseconds throughout; snapshots render them as durations.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (e.g. in-flight
// requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of instruments. Instruments are created
// on first use and live for the registry's lifetime; Counter/Gauge/
// Histogram are get-or-create and safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the cmd/ binaries record into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// names returns the sorted keys of a map — snapshots and reports are
// deterministic in instrument name.
func names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
