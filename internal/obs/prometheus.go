package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) of a Registry,
// served as /metrics beside the JSON /debug/vars. The mapping:
//
//   - counter "engine.match.attempts" → counter "engine_match_attempts_total"
//   - gauge "decision.cache.entries"  → gauge "decision_cache_entries"
//   - histogram "engine.match.latency" (nanoseconds by convention) →
//     histogram "engine_match_latency_seconds" with cumulative le buckets,
//     _sum and _count, plus "..._seconds_p50/_p90/_p99" quantile gauges
//     (exported as separate gauge families — the text format has no
//     native quantile slot on the histogram type).
//
// The histogram buckets are a fixed decade ladder from 100ns to 10s:
// coarser than the internal HDR-style buckets, but a stable, scrape-
// friendly shape that every Prometheus can graph.

// promBoundsNs is the exposed bucket ladder, in the histograms' native
// nanoseconds.
var promBoundsNs = []int64{
	100, 1_000, 10_000, 100_000,
	1_000_000, 10_000_000, 100_000_000,
	1_000_000_000, 10_000_000_000,
}

// Cumulative returns, for each upper bound, how many observations are ≤
// that bound (conservatively, by each internal bucket's upper value), in
// the histogram's native unit. The last element of the returned slice is
// the total count (the +Inf bucket).
func (h *Histogram) Cumulative(bounds []int64) []int64 {
	out := make([]int64, len(bounds)+1)
	for idx := 0; idx < histBuckets; idx++ {
		var n int64
		for s := range h.stripes {
			n += h.stripes[s].counts[idx].Load()
		}
		if n == 0 {
			continue
		}
		slot := len(bounds) // +Inf
		hi := bucketHigh(idx)
		for i, b := range bounds {
			if hi <= b {
				slot = i
				break
			}
		}
		out[slot] += n
	}
	// Make the per-bound counts cumulative; the final slot becomes total.
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}

// promName converts the registry's dotted lowercase convention to a valid
// Prometheus metric name: dots become underscores, and any rune outside
// [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.':
			b.WriteByte('_')
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the exposition format accepts (no exponent
// surprises for integral values).
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every instrument in the registry in Prometheus
// text exposition format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	// Histograms need the live instrument for bucket counts; grab refs
	// under the lock.
	r.mu.RLock()
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.RUnlock()

	for _, name := range names(s.Counters) {
		n := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range names(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range names(s.Histograms) {
		h := hists[name]
		snap := s.Histograms[name]
		n := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := h.Cumulative(promBoundsNs)
		for i, b := range promBoundsNs {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, promFloat(float64(b)/1e9), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(float64(snap.Sum)/1e9), n, snap.Count); err != nil {
			return err
		}
		for _, q := range [...]struct {
			suffix string
			v      int64
		}{{"_p50", snap.P50}, {"_p90", snap.P90}, {"_p99", snap.P99}} {
			qn := n + q.suffix
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", qn, qn, promFloat(float64(q.v)/1e9)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PrometheusHandler serves the registry as a /metrics endpoint. A nil
// registry serves an empty exposition.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		if reg != nil {
			reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape output
		}
	})
}
