package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Snapshot is a point-in-time copy of every instrument in a registry. It
// round-trips through JSON, which is what /debug/vars serves.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteText renders a snapshot as an aligned terminal report. Histogram
// values are rendered as durations (the package-wide convention).
func WriteText(w io.Writer, s Snapshot) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "counter\tvalue")
		for _, name := range names(s.Counters) {
			fmt.Fprintf(tw, "%s\t%d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "gauge\tvalue")
		for _, name := range names(s.Gauges) {
			fmt.Fprintf(tw, "%s\t%d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(tw, "histogram\tcount\tmean\tp50\tp90\tp99\tmax")
		for _, name := range names(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n", name, h.Count,
				round(time.Duration(h.Mean)), round(time.Duration(h.P50)),
				round(time.Duration(h.P90)), round(time.Duration(h.P99)),
				round(time.Duration(h.Max)))
		}
	}
	tw.Flush()
}

// round trims a duration to three significant-ish digits for display.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond)
	default:
		return d
	}
}
