package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values are log-bucketed with histSub linear
// sub-buckets per power of two, an HDR-histogram-style scheme giving a
// bounded relative error of 1/histSub (12.5%) at any magnitude. Values in
// [0, histSub) land in exact single-value buckets.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per power of two
	// histBuckets covers the full non-negative int64 range: the top
	// bucket index is (62-histSubBits+1)*histSub + histSub-1.
	histBuckets = (62 - histSubBits + 2) * histSub

	// histStripes spreads concurrent writers across independent copies of
	// the bucket array; a reader merges them. Writers pick a stripe by
	// hashing the observed value, so no cross-writer state is shared.
	histStripes = 8
)

// histStripe is one independently updated copy of the histogram state.
// All fields are atomics, so Observe never takes a lock.
type histStripe struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// Histogram is a concurrency-safe latency histogram: writers update one of
// histStripes striped bucket arrays with plain atomic adds, readers merge
// the stripes. Observations are int64s, by convention nanoseconds.
type Histogram struct {
	stripes [histStripes]histStripe
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	for i := range h.stripes {
		h.stripes[i].min.Store(math.MaxInt64)
	}
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int(v>>(uint(exp)-histSubBits)) & (histSub - 1)
	return (exp-histSubBits+1)*histSub + sub
}

// bucketHigh returns the largest value mapping to bucket idx — the
// conservative (upper-bound) representative quantiles report.
func bucketHigh(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := idx/histSub - 1 + histSubBits
	sub := idx % histSub
	width := int64(1) << (uint(exp) - histSubBits)
	low := (int64(histSub) + int64(sub)) * width
	return low + width - 1
}

// stripeFor picks a stripe by hashing the value — deterministic, shares no
// state between writers, and spreads clustered latencies by their low bits.
func (h *Histogram) stripeFor(v int64) *histStripe {
	x := uint64(v) * 0x9E3779B97F4A7C15
	return &h.stripes[(x>>59)&(histStripes-1)]
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records a raw int64 observation (negative values clamp to 0).
func (h *Histogram) ObserveNs(v int64) {
	if v < 0 {
		v = 0
	}
	s := h.stripeFor(v)
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	atomicMin(&s.min, v)
	atomicMax(&s.max, v)
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].sum.Load()
	}
	return n
}

// Min returns the smallest observation, 0 when empty.
func (h *Histogram) Min() int64 {
	m := int64(math.MaxInt64)
	for i := range h.stripes {
		if v := h.stripes[i].min.Load(); v < m {
			m = v
		}
	}
	if m == math.MaxInt64 {
		return 0
	}
	return m
}

// Max returns the largest observation, 0 when empty.
func (h *Histogram) Max() int64 {
	var m int64
	for i := range h.stripes {
		if v := h.stripes[i].max.Load(); v > m {
			m = v
		}
	}
	return m
}

// Mean returns the mean observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) with a
// relative error bounded by the sub-bucket resolution (12.5%). Returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	max := h.Max()
	var cum int64
	for idx := 0; idx < histBuckets; idx++ {
		var n int64
		for s := range h.stripes {
			n += h.stripes[s].counts[idx].Load()
		}
		cum += n
		if cum >= target {
			hi := bucketHigh(idx)
			if hi > max {
				hi = max // never report past the true maximum
			}
			return hi
		}
	}
	return max
}

// HistSnapshot is a point-in-time summary of a histogram. Values are in
// the histogram's native unit (nanoseconds for latency histograms).
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
