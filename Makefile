GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: checks every bench still runs, not perf.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The pre-merge gate: static checks, a clean build, the full suite under
# the race detector, and a smoke pass over every benchmark.
ci: vet build race bench
