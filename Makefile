GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json bench-compare chaos serve-smoke overload-smoke metrics-smoke diff-smoke fuzz-smoke lint-metrics ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: checks every bench still runs, not perf.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Cheap hot-path sanity: the headline engine benchmark must run (and its
# allocs/op column stay visible) without paying for a full perf run.
bench-smoke:
	$(GO) test -bench 'BenchmarkEngineMatchRequest' -benchtime 100x \
		-benchmem -run '^$$' .

# Persist the perf trajectory: run the engine + decision benchmarks with
# real benchtime and record name → ns/op, allocs/op, matches/sec as JSON
# so regressions are diffable across PRs.
bench-json:
	$(GO) test -bench 'BenchmarkEngine|BenchmarkProfile|BenchmarkAblationUnifiedIndex|BenchmarkAblationKeywordIndex|BenchmarkAblationInstrumentation|BenchmarkAblationFingerprint|BenchmarkAblationDomainTrie|BenchmarkDecisionCache|BenchmarkSnapshot' \
		-benchtime 1s -benchmem -run '^$$' . \
		| $(GO) run ./cmd/aa-benchjson > BENCH_engine.json
	@echo wrote BENCH_engine.json

# The perf gate: re-run the pinned hot-path benchmarks and diff them
# against the committed baseline. Fails when a pinned benchmark regresses
# more than 15% ns/op or a zero-allocation pin starts allocating.
# Regenerate the baseline with `make bench-json` when a PR moves the
# numbers on purpose.
bench-compare:
	$(GO) test -bench 'BenchmarkEngineMatchRequest|BenchmarkDecisionCacheOn' \
		-benchtime 1s -benchmem -run '^$$' . \
		| $(GO) run ./cmd/aa-benchjson > /tmp/aa-bench-new.json
	$(GO) run ./cmd/aa-benchjson -compare BENCH_engine.json /tmp/aa-bench-new.json

# A small survey under the race detector with 20% fault injection: the
# crawl must complete with partial results and report per-class fault,
# retry and breaker telemetry instead of aborting.
chaos:
	$(GO) run -race ./cmd/aa-survey -top 50 -stratum 20 \
		-fault-rate 0.2 -fault-seed 7 -page-timeout 2s \
		-max-retries 3 -error-budget 0.5 -summary

# End-to-end check of the decision service: aa-serve starts against the
# testdata lists, exercises match/batch/elemhide/lists/reload against
# itself, then SIGTERMs itself and must drain cleanly.
serve-smoke:
	$(GO) run -race ./cmd/aa-serve -smoke -listen 127.0.0.1:0 \
		-easylist cmd/aa-serve/testdata/easylist.txt \
		-whitelist cmd/aa-serve/testdata/exceptionrules.txt

# Overload acceptance: aa-serve under a tiny admission limit (capacity 2,
# queue 2) hammers itself past the concurrency limit under the race
# detector. The run must show real 429s with Retry-After, no 5xx, at
# least one admitted heavyweight batch, and /readyz flipping to 503
# during the SIGTERM drain.
overload-smoke:
	$(GO) run -race ./cmd/aa-serve -smoke -overload -listen 127.0.0.1:0 \
		-shed-capacity 2 -shed-queue 2 \
		-easylist cmd/aa-serve/testdata/easylist.txt \
		-whitelist cmd/aa-serve/testdata/exceptionrules.txt

# Prometheus exposition check: start the serve stack, scrape /metrics,
# validate the text format with the parser in cmd/aa-serve's tests, and
# assert the per-list attribution counters increase after a match.
metrics-smoke:
	$(GO) test -race -run 'TestMetricsSmoke|TestMetricsParserRejectsGarbage' \
		-count=1 -v ./cmd/aa-serve

# Differential-serving acceptance: one request evaluated under two
# profiles (easylist-only vs full) must flip verdicts, and /v1/diff must
# attribute the flip to the responsible exception filter by list and
# line. Runs under the race detector against the smoke testdata.
diff-smoke:
	$(GO) test -race -run 'TestProfileDiffSmoke|TestUnknownProfileIs400|TestParseProfiles' \
		-count=1 -v ./cmd/aa-serve

# A short snapshot-decoder fuzz run: truncated, bit-flipped and
# version-skewed snapshot bytes must produce errors, never a panic or a
# half-built engine. The committed corpus seeds cover each section; ten
# seconds of mutation on top catches format-change regressions cheaply.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 10s \
		./internal/engine/snapbin

# Metric-name hygiene: every metric registered in obs.Registry must be
# lowercase dot.separated and unique across the tree.
lint-metrics:
	$(GO) run ./cmd/aa-lint -metrics -metrics-root .

# The pre-merge gate: static checks, a clean build, the full suite under
# the race detector, a smoke pass over every benchmark plus the hot-path
# allocation smoke, the perf gate against the committed baseline, a short
# snapshot-decoder fuzz run, and the chaos and decision-service smoke runs.
ci: vet lint-metrics build race bench bench-smoke bench-compare fuzz-smoke chaos serve-smoke overload-smoke metrics-smoke diff-smoke
